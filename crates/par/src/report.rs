//! Per-rank communication attribution and combined phase reports.
//!
//! The solvers record *global* communication counters ([`CommSnapshot`]:
//! totals over all ranks). This module splits those totals back over ranks
//! using the exact topology of the [`HaloPlan`] — no estimation, pure integer
//! bookkeeping — so per-rank imbalance (max/min/avg of messages, bytes,
//! fused parts) can be published to a metrics registry, and combines measured
//! per-phase wall times from the profiler with α–β–γ modeled communication
//! time at arbitrary rank counts into one paper-style report table.

use crate::calibrate::Calibration;
use crate::comm::CommSnapshot;
use crate::cost::CostModel;
use crate::halo::HaloPlan;
use kryst_obs::{MetricsRegistry, ProfileSnapshot, WireSnapshot};

/// Split a global counter snapshot into exact per-rank snapshots.
///
/// Point-to-point traffic is attributed by the halo plan: the counted
/// messages are `E` whole exchanges (`E = p2p_messages /
/// messages_per_exchange`), and within one exchange rank `r` receives
/// `plan.recv[r].len()` messages carrying its ghost-entry count. Bytes are
/// split proportionally to ghost entries. Reductions are collectives — every
/// rank participates in each one, so the reduction counters are *copied* to
/// each rank, not divided. Flops are split evenly. Any integer remainder
/// (traffic not attributable to whole exchanges) lands on rank 0, so the
/// per-rank p2p fields always sum back to the global counters exactly.
pub fn per_rank_comm(plan: &HaloPlan, global: &CommSnapshot, nranks: usize) -> Vec<CommSnapshot> {
    let nranks = nranks.max(1);
    let mut out = vec![CommSnapshot::default(); nranks];

    // Whole-exchange attribution of p2p traffic.
    let exchanges = if plan.messages_per_exchange > 0 {
        global.p2p_messages / plan.messages_per_exchange as u64
    } else {
        0
    };
    let bytes_unit = if plan.entries_per_exchange > 0 {
        global.p2p_bytes / plan.entries_per_exchange as u64
    } else {
        0
    };
    let flops_base = global.flops / nranks as u64;
    let overlap_base = global.overlap_flops / nranks as u64;
    let red_overlap_base = global.reduction_overlap_flops / nranks as u64;
    for (r, snap) in out.iter_mut().enumerate() {
        let neighbors = plan.recv.get(r).map(Vec::len).unwrap_or(0) as u64;
        let entries: usize = plan
            .recv
            .get(r)
            .map(|v| v.iter().map(|&(_, c)| c).sum())
            .unwrap_or(0);
        snap.p2p_messages = neighbors * exchanges;
        snap.p2p_bytes = entries as u64 * bytes_unit;
        // Collectives: every rank executes every reduction — synchronous and
        // split-phase alike.
        snap.reductions = global.reductions;
        snap.reduction_bytes = global.reduction_bytes;
        snap.fused_parts = global.fused_parts;
        snap.overlapped_reductions = global.overlapped_reductions;
        snap.overlapped_reduction_bytes = global.overlapped_reduction_bytes;
        snap.overlapped_parts = global.overlapped_parts;
        snap.flops = flops_base;
        snap.overlap_flops = overlap_base;
        snap.reduction_overlap_flops = red_overlap_base;
    }
    // Remainders (partial exchanges, non-divisible byte totals, flop
    // leftovers) go to rank 0 so the sums reconcile exactly.
    let msg_sum: u64 = out.iter().map(|s| s.p2p_messages).sum();
    let byte_sum: u64 = out.iter().map(|s| s.p2p_bytes).sum();
    let flop_sum: u64 = out.iter().map(|s| s.flops).sum();
    let overlap_sum: u64 = out.iter().map(|s| s.overlap_flops).sum();
    let red_overlap_sum: u64 = out.iter().map(|s| s.reduction_overlap_flops).sum();
    out[0].p2p_messages += global.p2p_messages - msg_sum;
    out[0].p2p_bytes += global.p2p_bytes - byte_sum;
    out[0].flops += global.flops - flop_sum;
    out[0].overlap_flops += global.overlap_flops - overlap_sum;
    out[0].reduction_overlap_flops += global.reduction_overlap_flops - red_overlap_sum;
    out
}

/// Publish max/min/avg imbalance gauges over per-rank snapshots.
///
/// For each of `p2p_messages`, `p2p_bytes`, `fused_parts`, `reductions`,
/// `overlapped_reductions`, and `overlapped_parts` this sets three gauges
/// named `{prefix}_{field}_{max|min|avg}` in `reg` — the split-phase
/// collectives and their fused parts are first-class registry metrics.
pub fn publish_imbalance(reg: &MetricsRegistry, prefix: &str, snaps: &[CommSnapshot]) {
    type FieldGet = fn(&CommSnapshot) -> u64;
    let fields: [(&str, FieldGet); 6] = [
        ("p2p_messages", |s| s.p2p_messages),
        ("p2p_bytes", |s| s.p2p_bytes),
        ("fused_parts", |s| s.fused_parts),
        ("reductions", |s| s.reductions),
        ("overlapped_reductions", |s| s.overlapped_reductions),
        ("overlapped_parts", |s| s.overlapped_parts),
    ];
    for (name, get) in fields {
        let mut max = 0u64;
        let mut min = u64::MAX;
        let mut sum = 0u64;
        for s in snaps {
            let x = get(s);
            max = max.max(x);
            min = min.min(x);
            sum += x;
        }
        if snaps.is_empty() {
            min = 0;
        }
        let avg = if snaps.is_empty() {
            0.0
        } else {
            sum as f64 / snaps.len() as f64
        };
        reg.gauge(&format!("{prefix}_{name}_max")).set(max as f64);
        reg.gauge(&format!("{prefix}_{name}_min")).set(min as f64);
        reg.gauge(&format!("{prefix}_{name}_avg")).set(avg);
    }
}

/// One row of a [`PhaseReport`]: a measured phase.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (as in [`kryst_obs::Phase::name`]).
    pub name: String,
    /// Number of timed occurrences.
    pub count: u64,
    /// Measured local wall time in nanoseconds.
    pub total_ns: u64,
}

/// Modeled communication time at one rank count.
#[derive(Debug, Clone, Copy)]
pub struct ModeledRow {
    /// Rank count the model was evaluated at.
    pub nranks: usize,
    /// Modeled compute seconds.
    pub compute: f64,
    /// Modeled *exposed* reduction seconds.
    pub reduction: f64,
    /// Modeled point-to-point seconds.
    pub p2p: f64,
    /// Split-phase reduction latency hidden behind pipelined local work
    /// (informational; not in the total).
    pub red_hidden: f64,
}

/// Combined measured + modeled breakdown for one solve.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Label printed at the top of the table (solver/preconditioner pair).
    pub label: String,
    /// Iterations the solve took (0 if unknown; per-iteration columns are
    /// suppressed in that case).
    pub iterations: usize,
    /// Measured local phases, sorted by descending total time.
    pub measured: Vec<PhaseRow>,
    /// Modeled comm time at each requested rank count.
    pub modeled: Vec<ModeledRow>,
}

/// Build a combined report from a profile snapshot, the global comm
/// counters, and a cost model evaluated at each rank count in `ranks`.
pub fn phase_report(
    label: &str,
    prof: &ProfileSnapshot,
    comm: &CommSnapshot,
    model: &CostModel,
    ranks: &[usize],
    iterations: usize,
) -> PhaseReport {
    let mut measured: Vec<PhaseRow> = prof
        .phases
        .iter()
        .filter(|p| p.count > 0)
        .map(|p| PhaseRow {
            name: p.name.clone(),
            count: p.count,
            total_ns: p.total_ns,
        })
        .collect();
    measured.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    let modeled = ranks
        .iter()
        .map(|&p| {
            let t = model.time(comm, p);
            ModeledRow {
                nranks: p,
                compute: t.compute,
                reduction: t.reduction,
                p2p: t.p2p,
                red_hidden: t.reduction_hidden,
            }
        })
        .collect();
    PhaseReport {
        label: label.to_string(),
        iterations,
        measured,
        modeled,
    }
}

impl PhaseReport {
    /// Render the report as a plain-text table in the style of the paper's
    /// per-phase breakdowns: measured local time per phase, then modeled
    /// comm/compute time per rank count (per iteration when known).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("== {} ==\n", self.label));
        if self.iterations > 0 {
            s.push_str(&format!("iterations: {}\n", self.iterations));
        }
        s.push_str("measured local phases:\n");
        s.push_str(&format!(
            "  {:<14} {:>10} {:>12} {:>12} {:>14}\n",
            "phase", "count", "total_ms", "mean_us", "per_iter_us"
        ));
        for row in &self.measured {
            let total_ms = row.total_ns as f64 / 1e6;
            let mean_us = if row.count > 0 {
                row.total_ns as f64 / row.count as f64 / 1e3
            } else {
                0.0
            };
            let per_iter = if self.iterations > 0 {
                format!("{:.3}", row.total_ns as f64 / self.iterations as f64 / 1e3)
            } else {
                "-".to_string()
            };
            s.push_str(&format!(
                "  {:<14} {:>10} {:>12.3} {:>12.3} {:>14}\n",
                row.name, row.count, total_ms, mean_us, per_iter
            ));
        }
        if !self.modeled.is_empty() {
            let any_hidden = self.modeled.iter().any(|m| m.red_hidden > 0.0);
            s.push_str("modeled time at P ranks (s):\n");
            if any_hidden {
                s.push_str(&format!(
                    "  {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                    "P", "compute", "reduction", "red_hidden", "p2p", "total"
                ));
            } else {
                s.push_str(&format!(
                    "  {:>6} {:>12} {:>12} {:>12} {:>12}\n",
                    "P", "compute", "reduction", "p2p", "total"
                ));
            }
            for m in &self.modeled {
                let total = m.compute + m.reduction + m.p2p;
                if any_hidden {
                    s.push_str(&format!(
                        "  {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                        m.nranks, m.compute, m.reduction, m.red_hidden, m.p2p, total
                    ));
                } else {
                    s.push_str(&format!(
                        "  {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                        m.nranks, m.compute, m.reduction, m.p2p, total
                    ));
                }
            }
        }
        s
    }
}

/// Render the transport calibration table: assumed (Curie-like) constants
/// next to the constants measured on each backend, one column per
/// [`Calibration`]. This is the table the prof-smoke CI leg greps for.
pub fn calibration_table(assumed: &CostModel, cals: &[Calibration]) -> String {
    let mut s = String::from("transport calibration (measured machine constants):\n");
    s.push_str(&format!("  {:<14} {:>14}", "constant", "assumed"));
    for c in cals {
        s.push_str(&format!(
            " {:>14}",
            format!("{}(P={})", c.backend, c.nranks)
        ));
    }
    s.push('\n');
    type Get = fn(&Calibration) -> f64;
    let rows: [(&str, f64, Get); 4] = [
        ("alpha_msg_s", assumed.alpha_msg, |c| c.alpha_msg),
        ("alpha_reduce_s", assumed.alpha_reduce, |c| c.alpha_reduce),
        ("beta_B_per_s", assumed.beta, |c| c.beta),
        ("gamma_flop_s", assumed.gamma, |c| c.gamma),
    ];
    for (name, assumed_v, get) in rows {
        s.push_str(&format!("  {:<14} {:>14.4e}", name, assumed_v));
        for c in cals {
            s.push_str(&format!(" {:>14.4e}", get(c)));
        }
        s.push('\n');
    }
    s
}

/// One measured-vs-modeled comparison: a communication pattern replayed on a
/// real backend against the time the calibrated cost model predicts for it.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// What was replayed (e.g. `"reductions/iter"`, `"halo/iter"`).
    pub what: String,
    /// Backend it ran on.
    pub backend: String,
    /// World size of the replay.
    pub nranks: usize,
    /// Wall seconds measured on the wire.
    pub measured_s: f64,
    /// Seconds the calibrated model charges for the same pattern.
    pub modeled_s: f64,
}

impl ValidationRow {
    /// measured / modeled (∞ when the model charges zero).
    pub fn ratio(&self) -> f64 {
        if self.modeled_s > 0.0 {
            self.measured_s / self.modeled_s
        } else {
            f64::INFINITY
        }
    }
}

/// Render the measured-vs-modeled validation table (the acceptance check:
/// per-iteration comm time agreeing within 2× on the socket backend).
pub fn validation_table(rows: &[ValidationRow]) -> String {
    let mut s = String::from("measured vs modeled comm time:\n");
    s.push_str(&format!(
        "  {:<18} {:>10} {:>4} {:>14} {:>14} {:>8}\n",
        "pattern", "backend", "P", "measured_s", "modeled_s", "ratio"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<18} {:>10} {:>4} {:>14.6e} {:>14.6e} {:>8.3}\n",
            r.what,
            r.backend,
            r.nranks,
            r.measured_s,
            r.modeled_s,
            r.ratio()
        ));
    }
    s
}

/// Publish per-rank wire-counter gauges: for each of the six
/// [`WireSnapshot`] fields this sets `{prefix}_{field}_{max|min|avg}` plus
/// one `{prefix}_{field}_rank{r}` gauge per rank in `reg` — the wire-level
/// analogue of [`publish_imbalance`], fed by actual transport endpoints
/// (indexed by rank, rank 0 first) instead of attributed logical counters.
pub fn publish_wire(reg: &MetricsRegistry, prefix: &str, wires: &[WireSnapshot]) {
    type Get = fn(&WireSnapshot) -> u64;
    let fields: [(&str, Get); 6] = [
        ("wire_msgs_sent", |w| w.msgs_sent),
        ("wire_bytes_sent", |w| w.bytes_sent),
        ("wire_msgs_recv", |w| w.msgs_recv),
        ("wire_bytes_recv", |w| w.bytes_recv),
        ("wire_send_ns", |w| w.send_ns),
        ("wire_recv_ns", |w| w.recv_ns),
    ];
    for (name, get) in fields {
        let mut max = 0u64;
        let mut min = u64::MAX;
        let mut sum = 0u64;
        for (r, w) in wires.iter().enumerate() {
            let x = get(w);
            max = max.max(x);
            min = min.min(x);
            sum += x;
            reg.gauge(&format!("{prefix}_{name}_rank{r}")).set(x as f64);
        }
        if wires.is_empty() {
            min = 0;
        }
        let avg = if wires.is_empty() {
            0.0
        } else {
            sum as f64 / wires.len() as f64
        };
        reg.gauge(&format!("{prefix}_{name}_max")).set(max as f64);
        reg.gauge(&format!("{prefix}_{name}_min")).set(min as f64);
        reg.gauge(&format!("{prefix}_{name}_avg")).set(avg);
    }
}

/// Serialize a [`CommSnapshot`] as a JSON object.
pub fn comm_to_json(snap: &CommSnapshot) -> String {
    kryst_obs::json::JsonValue::obj(vec![
        ("reductions", (snap.reductions as f64).into()),
        ("reduction_bytes", (snap.reduction_bytes as f64).into()),
        ("fused_parts", (snap.fused_parts as f64).into()),
        ("p2p_messages", (snap.p2p_messages as f64).into()),
        ("p2p_bytes", (snap.p2p_bytes as f64).into()),
        ("flops", (snap.flops as f64).into()),
        ("overlap_flops", (snap.overlap_flops as f64).into()),
        (
            "overlapped_reductions",
            (snap.overlapped_reductions as f64).into(),
        ),
        (
            "overlapped_reduction_bytes",
            (snap.overlapped_reduction_bytes as f64).into(),
        ),
        ("overlapped_parts", (snap.overlapped_parts as f64).into()),
        (
            "reduction_overlap_flops",
            (snap.reduction_overlap_flops as f64).into(),
        ),
    ])
    .to_json()
}

/// Parse a [`CommSnapshot`] from the JSON produced by [`comm_to_json`].
/// The overlapped-reduction fields default to zero when absent, so comm
/// dumps written before the split-phase counters existed still parse.
pub fn comm_from_json(text: &str) -> Option<CommSnapshot> {
    let v = kryst_obs::json::JsonValue::parse(text).ok()?;
    let field = |k: &str| v.get(k).and_then(|x| x.as_f64()).map(|x| x as u64);
    Some(CommSnapshot {
        reductions: field("reductions")?,
        reduction_bytes: field("reduction_bytes")?,
        fused_parts: field("fused_parts")?,
        p2p_messages: field("p2p_messages")?,
        p2p_bytes: field("p2p_bytes")?,
        flops: field("flops")?,
        overlap_flops: field("overlap_flops")?,
        overlapped_reductions: field("overlapped_reductions").unwrap_or(0),
        overlapped_reduction_bytes: field("overlapped_reduction_bytes").unwrap_or(0),
        overlapped_parts: field("overlapped_parts").unwrap_or(0),
        reduction_overlap_flops: field("reduction_overlap_flops").unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> kryst_sparse::Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    fn plan(nranks: usize) -> HaloPlan {
        let a = laplace1d(64);
        HaloPlan::build(&a, &Layout::even(64, nranks))
    }

    #[test]
    fn per_rank_sums_reconcile_exactly() {
        for nranks in [2usize, 4, 8] {
            let p = plan(nranks);
            let global = CommSnapshot {
                reductions: 37,
                reduction_bytes: 37 * 48,
                fused_parts: 111,
                p2p_messages: p.messages_per_exchange as u64 * 25,
                p2p_bytes: p.entries_per_exchange as u64 * 25 * 8,
                flops: 1_000_003,
                overlap_flops: 999_999,
                overlapped_reductions: 13,
                overlapped_reduction_bytes: 13 * 40,
                overlapped_parts: 26,
                reduction_overlap_flops: 500_001,
            };
            let ranks = per_rank_comm(&p, &global, nranks);
            assert_eq!(ranks.len(), nranks);
            let msg: u64 = ranks.iter().map(|s| s.p2p_messages).sum();
            let bytes: u64 = ranks.iter().map(|s| s.p2p_bytes).sum();
            let flops: u64 = ranks.iter().map(|s| s.flops).sum();
            let overlap: u64 = ranks.iter().map(|s| s.overlap_flops).sum();
            let red_overlap: u64 = ranks.iter().map(|s| s.reduction_overlap_flops).sum();
            assert_eq!(msg, global.p2p_messages, "P = {nranks}");
            assert_eq!(bytes, global.p2p_bytes, "P = {nranks}");
            assert_eq!(flops, global.flops, "P = {nranks}");
            assert_eq!(overlap, global.overlap_flops, "P = {nranks}");
            assert_eq!(red_overlap, global.reduction_overlap_flops, "P = {nranks}");
            for s in &ranks {
                // Collectives are copied, not divided — split-phase included.
                assert_eq!(s.reductions, global.reductions);
                assert_eq!(s.reduction_bytes, global.reduction_bytes);
                assert_eq!(s.fused_parts, global.fused_parts);
                assert_eq!(s.overlapped_reductions, global.overlapped_reductions);
                assert_eq!(
                    s.overlapped_reduction_bytes,
                    global.overlapped_reduction_bytes
                );
                assert_eq!(s.overlapped_parts, global.overlapped_parts);
            }
        }
    }

    #[test]
    fn chain_topology_end_ranks_get_less_traffic() {
        let nranks = 4;
        let p = plan(nranks);
        let global = CommSnapshot {
            p2p_messages: p.messages_per_exchange as u64 * 10,
            p2p_bytes: p.entries_per_exchange as u64 * 10 * 8,
            ..Default::default()
        };
        let ranks = per_rank_comm(&p, &global, nranks);
        // 1-D chain: end ranks have 1 neighbor, interior ranks 2.
        assert!(ranks[0].p2p_messages < ranks[1].p2p_messages);
        assert!(ranks[3].p2p_messages < ranks[2].p2p_messages);
    }

    #[test]
    fn imbalance_gauges_published() {
        let reg = MetricsRegistry::new();
        let snaps = vec![
            CommSnapshot {
                p2p_messages: 10,
                p2p_bytes: 100,
                reductions: 5,
                fused_parts: 15,
                ..Default::default()
            },
            CommSnapshot {
                p2p_messages: 20,
                p2p_bytes: 300,
                reductions: 5,
                fused_parts: 15,
                overlapped_reductions: 4,
                overlapped_parts: 8,
                ..Default::default()
            },
        ];
        publish_imbalance(&reg, "solve", &snaps);
        assert_eq!(reg.gauge("solve_p2p_messages_max").get(), 20.0);
        assert_eq!(reg.gauge("solve_p2p_messages_min").get(), 10.0);
        assert_eq!(reg.gauge("solve_p2p_messages_avg").get(), 15.0);
        assert_eq!(reg.gauge("solve_p2p_bytes_avg").get(), 200.0);
        assert_eq!(reg.gauge("solve_reductions_max").get(), 5.0);
        assert_eq!(reg.gauge("solve_reductions_min").get(), 5.0);
        assert_eq!(reg.gauge("solve_overlapped_reductions_max").get(), 4.0);
        assert_eq!(reg.gauge("solve_overlapped_parts_avg").get(), 4.0);
    }

    #[test]
    fn report_renders_measured_and_modeled_sections() {
        let prof = kryst_obs::Profiler::new(true);
        prof.record_ns(kryst_obs::Phase::Spmv, 1_000_000);
        prof.record_ns(kryst_obs::Phase::Reduction, 250_000);
        let comm = CommSnapshot {
            reductions: 100,
            reduction_bytes: 800,
            p2p_messages: 64,
            p2p_bytes: 64 * 1024,
            flops: 10_000_000,
            ..Default::default()
        };
        let rep = phase_report(
            "gmres30+ilu0",
            &prof.snapshot(),
            &comm,
            &CostModel::default(),
            &[16, 1024],
            50,
        );
        let text = rep.to_text();
        assert!(text.contains("gmres30+ilu0"));
        assert!(text.contains("spmv"));
        assert!(text.contains("reduction"));
        assert!(text.contains("iterations: 50"));
        assert!(text.contains("  1024"));
        // Measured rows are sorted by descending total time.
        assert!(text.find("spmv").unwrap() < text.find("reduction").unwrap());
    }

    #[test]
    fn calibration_and_validation_tables_render() {
        let cal = Calibration {
            backend: "socket".into(),
            nranks: 4,
            alpha_msg: 2.0e-6,
            alpha_reduce: 3.0e-6,
            beta: 1.5e9,
            gamma: 6.0e9,
        };
        let table = calibration_table(&CostModel::curie_like(), std::slice::from_ref(&cal));
        assert!(table.contains("transport calibration"));
        assert!(table.contains("alpha_reduce_s"));
        assert!(table.contains("socket(P=4)"));
        assert!(table.contains("3.0000e-6"));
        let rows = vec![ValidationRow {
            what: "reductions/iter".into(),
            backend: "socket".into(),
            nranks: 4,
            measured_s: 2.0e-5,
            modeled_s: 1.6e-5,
        }];
        assert!((rows[0].ratio() - 1.25).abs() < 1e-12);
        let vtext = validation_table(&rows);
        assert!(vtext.contains("measured vs modeled"));
        assert!(vtext.contains("reductions/iter"));
        assert!(vtext.contains("1.25"));
    }

    #[test]
    fn wire_gauges_published() {
        let reg = MetricsRegistry::new();
        let wires = vec![
            WireSnapshot {
                msgs_sent: 10,
                bytes_sent: 80,
                msgs_recv: 12,
                bytes_recv: 96,
                send_ns: 500,
                recv_ns: 900,
            },
            WireSnapshot {
                msgs_sent: 20,
                bytes_sent: 160,
                msgs_recv: 18,
                bytes_recv: 144,
                send_ns: 700,
                recv_ns: 1100,
            },
        ];
        publish_wire(&reg, "solve", &wires);
        assert_eq!(reg.gauge("solve_wire_msgs_sent_max").get(), 20.0);
        assert_eq!(reg.gauge("solve_wire_msgs_sent_min").get(), 10.0);
        assert_eq!(reg.gauge("solve_wire_bytes_recv_avg").get(), 120.0);
        assert_eq!(reg.gauge("solve_wire_recv_ns_max").get(), 1100.0);
        // Per-rank gauges, rank-indexed in slice order.
        assert_eq!(reg.gauge("solve_wire_msgs_sent_rank0").get(), 10.0);
        assert_eq!(reg.gauge("solve_wire_msgs_sent_rank1").get(), 20.0);
        assert_eq!(reg.gauge("solve_wire_bytes_recv_rank1").get(), 144.0);
    }

    #[test]
    fn comm_snapshot_json_round_trips() {
        let snap = CommSnapshot {
            reductions: 1,
            reduction_bytes: 2,
            fused_parts: 3,
            p2p_messages: 4,
            p2p_bytes: 5,
            flops: 6,
            overlap_flops: 7,
            overlapped_reductions: 8,
            overlapped_reduction_bytes: 9,
            overlapped_parts: 10,
            reduction_overlap_flops: 11,
        };
        let text = comm_to_json(&snap);
        assert_eq!(comm_from_json(&text), Some(snap));
        assert_eq!(comm_from_json("{"), None);
    }

    #[test]
    fn comm_json_without_overlapped_fields_still_parses() {
        // Dumps from before the split-phase counters existed must stay
        // readable; missing fields default to zero.
        let legacy = concat!(
            "{\"reductions\":1,\"reduction_bytes\":2,\"fused_parts\":3,",
            "\"p2p_messages\":4,\"p2p_bytes\":5,\"flops\":6,\"overlap_flops\":7}"
        );
        let snap = comm_from_json(legacy).unwrap();
        assert_eq!(snap.reductions, 1);
        assert_eq!(snap.overlapped_reductions, 0);
        assert_eq!(snap.reduction_overlap_flops, 0);
    }
}
