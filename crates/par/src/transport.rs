//! The [`Transport`] trait and its two backends.
//!
//! Everything above this layer — the butterfly collectives in
//! [`crate::collective`], the halo exchange, the agglomerated coarse
//! gather/scatter — is written once against [`Transport`] and therefore runs
//! identically over:
//!
//! * [`ChannelTransport`] — the in-process mesh (one thread per rank,
//!   `std::sync::mpsc` channels), the default backend and the bit-exact
//!   successor of the old `spmd::RankCtx`;
//! * [`SocketTransport`] — real OS worker processes connected by a full
//!   `TcpStream` mesh on loopback with length-prefixed frames. Workers are
//!   spawned by re-executing the current binary with `KRYST_RANK` /
//!   `KRYST_WORLD` in the environment (see [`crate::spmd`] for the process
//!   orchestration); pure `std`, no new dependencies.
//!
//! Both backends buffer sends (channel sends enqueue; socket sends hand the
//! encoded frame to a per-connection writer thread), which is what makes the
//! symmetric send-then-recv butterfly deadlock-free and gives split-phase
//! sends their "post and continue" semantics. Failures surface as typed
//! [`TransportError`]s instead of panics: a dead peer is [`TransportError::
//! PeerClosed`], never an abort of the whole mesh.
//!
//! Every endpoint carries [`WireStats`] counters recording what actually
//! crossed the wire — the measurement side of the cost-model calibration.

use kryst_obs::WireStats;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Typed failure of a transport operation. Surfaced through solver results
/// instead of panicking the mesh (the old `expect("peer alive")` behavior).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint hung up (process exited, thread returned, or the
    /// stream reached EOF) while this rank was sending to or receiving from
    /// it.
    PeerClosed {
        /// The rank that observed the failure.
        rank: usize,
        /// The peer that went away.
        peer: usize,
    },
    /// An OS-level I/O error on the socket backend (timeout, reset, …).
    Io {
        /// The rank that observed the failure.
        rank: usize,
        /// Human-readable description of the underlying error.
        detail: String,
    },
    /// Spawning or bootstrapping the worker process mesh failed.
    Spawn {
        /// Human-readable description.
        detail: String,
    },
    /// The peer spoke, but not the expected protocol (length mismatch,
    /// out-of-range rank, malformed frame).
    Protocol {
        /// Human-readable description.
        detail: String,
    },
    /// A worker rank failed (panicked, exited abnormally, or reported an
    /// error) and the run as a whole cannot produce a result.
    RankFailed {
        /// The rank that failed.
        rank: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerClosed { rank, peer } => {
                write!(f, "transport: rank {rank} lost peer {peer} (peer closed)")
            }
            TransportError::Io { rank, detail } => {
                write!(f, "transport: i/o error on rank {rank}: {detail}")
            }
            TransportError::Spawn { detail } => write!(f, "transport: spawn failed: {detail}"),
            TransportError::Protocol { detail } => {
                write!(f, "transport: protocol error: {detail}")
            }
            TransportError::RankFailed { rank, detail } => {
                write!(f, "transport: rank {rank} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Which transport backend an SPMD run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process mesh: one thread per rank, `mpsc` channels (default).
    Channel,
    /// Real OS worker processes over a loopback `TcpStream` mesh.
    Socket,
}

impl TransportKind {
    /// Resolve from the environment: `KRYST_TRANSPORT=socket` selects
    /// [`TransportKind::Socket`], anything else (including unset) the
    /// in-process channel default.
    pub fn from_env() -> Self {
        match std::env::var("KRYST_TRANSPORT") {
            Ok(v) if v == "socket" => TransportKind::Socket,
            _ => TransportKind::Channel,
        }
    }

    /// Stable lowercase name used in traces, benchmarks, and reports.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Socket => "socket",
        }
    }
}

impl Default for TransportKind {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One rank's endpoint into the mesh. Object-safe so orchestration code can
/// hold `Box<dyn Transport>`; the collectives are generic (`T: Transport +
/// ?Sized`) so monomorphized hot paths pay no virtual dispatch.
///
/// Contract shared by all backends: `send` is *buffered* (it enqueues and
/// returns without waiting for the matching receive), messages between a
/// fixed (sender, receiver) pair arrive in order, and a vanished peer yields
/// [`TransportError::PeerClosed`] rather than a panic.
pub trait Transport {
    /// This endpoint's rank in `0..nranks()`.
    fn rank(&self) -> usize;
    /// World size.
    fn nranks(&self) -> usize;
    /// Buffered send of `payload` to rank `dst`.
    fn send(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError>;
    /// Blocking receive from rank `src` into `buf` (overwritten, resized).
    fn recv_into(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError>;
    /// Wire-level counters for this endpoint.
    fn wire(&self) -> &WireStats;

    /// Blocking receive returning a fresh vector.
    fn recv(&self, src: usize) -> Result<Vec<f64>, TransportError> {
        let mut buf = Vec::new();
        self.recv_into(src, &mut buf)?;
        Ok(buf)
    }

    /// Control-plane send: identical delivery to [`Transport::send`] but
    /// excluded from the wire counters (orchestration frames — results,
    /// stats, worker commands — must not pollute the measured traffic).
    fn send_ctl(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError> {
        self.send(dst, payload)
    }

    /// Control-plane receive (see [`Transport::send_ctl`]).
    fn recv_ctl(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError> {
        self.recv_into(src, buf)
    }
}

// ---------------------------------------------------------------------------
// Channel backend
// ---------------------------------------------------------------------------

/// In-process backend: rank `r`'s endpoint owns a sender to and a receiver
/// from every other rank. Dropping the endpoint disconnects its channels,
/// which is how peer death propagates (peers see `PeerClosed`).
pub struct ChannelTransport {
    rank: usize,
    nranks: usize,
    senders: Vec<Option<Sender<Vec<f64>>>>,
    receivers: Vec<Option<Receiver<Vec<f64>>>>,
    wire: WireStats,
}

impl ChannelTransport {
    fn check_peer(&self, peer: usize, verb: &str) -> Result<(), TransportError> {
        if peer >= self.nranks || peer == self.rank {
            return Err(TransportError::Protocol {
                detail: format!(
                    "rank {} cannot {verb} rank {peer} in a world of {}",
                    self.rank, self.nranks
                ),
            });
        }
        Ok(())
    }

    fn send_inner(&self, dst: usize, payload: &[f64], count: bool) -> Result<(), TransportError> {
        self.check_peer(dst, "send to")?;
        let t0 = Instant::now();
        let sent = self.senders[dst]
            .as_ref()
            .expect("sender present for valid peer")
            .send(payload.to_vec());
        if sent.is_err() {
            return Err(TransportError::PeerClosed {
                rank: self.rank,
                peer: dst,
            });
        }
        if count {
            self.wire
                .record_send(payload.len() * 8, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn recv_inner(
        &self,
        src: usize,
        buf: &mut Vec<f64>,
        count: bool,
    ) -> Result<(), TransportError> {
        self.check_peer(src, "receive from")?;
        let t0 = Instant::now();
        match self.receivers[src]
            .as_ref()
            .expect("receiver present for valid peer")
            .recv()
        {
            Ok(msg) => {
                if count {
                    self.wire
                        .record_recv(msg.len() * 8, t0.elapsed().as_nanos() as u64);
                }
                *buf = msg;
                Ok(())
            }
            Err(_) => Err(TransportError::PeerClosed {
                rank: self.rank,
                peer: src,
            }),
        }
    }
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }
    fn nranks(&self) -> usize {
        self.nranks
    }
    fn send(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError> {
        self.send_inner(dst, payload, true)
    }
    fn recv_into(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError> {
        self.recv_inner(src, buf, true)
    }
    fn wire(&self) -> &WireStats {
        &self.wire
    }
    fn send_ctl(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError> {
        self.send_inner(dst, payload, false)
    }
    fn recv_ctl(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError> {
        self.recv_inner(src, buf, false)
    }
}

/// Build the full in-process mesh: one [`ChannelTransport`] endpoint per
/// rank, every ordered pair connected by its own channel.
pub fn channel_mesh(nranks: usize) -> Vec<ChannelTransport> {
    let mut senders: Vec<Vec<Option<Sender<Vec<f64>>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Vec<f64>>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for from in 0..nranks {
        for to in 0..nranks {
            if from == to {
                continue;
            }
            let (tx, rx) = channel();
            senders[from][to] = Some(tx);
            receivers[to][from] = Some(rx);
        }
    }
    let mut out = Vec::with_capacity(nranks);
    for (rank, (s, r)) in senders.into_iter().zip(receivers).enumerate() {
        out.push(ChannelTransport {
            rank,
            nranks,
            senders: s,
            receivers: r,
            wire: WireStats::default(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Socket framing
// ---------------------------------------------------------------------------

/// Encode one length-prefixed frame: `u32` little-endian element count, then
/// `count` `f64`s little-endian. Appends to `out` so a writer thread can own
/// the allocation.
fn encode_frame(payload: &[f64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(4 + payload.len() * 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    for v in payload {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_exact_frame<R: Read>(
    r: &mut R,
    scratch: &mut Vec<u8>,
    out: &mut Vec<f64>,
) -> std::io::Result<()> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let count = u32::from_le_bytes(hdr) as usize;
    scratch.clear();
    scratch.resize(count * 8, 0);
    r.read_exact(scratch)?;
    out.clear();
    out.reserve(count);
    for chunk in scratch.chunks_exact(8) {
        out.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    Ok(())
}

fn write_frame_stream(stream: &mut TcpStream, payload: &[f64]) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode_frame(payload, &mut buf);
    stream.write_all(&buf)
}

fn read_frame_stream(stream: &mut TcpStream, out: &mut Vec<f64>) -> std::io::Result<()> {
    let mut scratch = Vec::new();
    read_exact_frame(stream, &mut scratch, out)
}

fn io_timeout_ms() -> u64 {
    std::env::var("KRYST_SPMD_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

// ---------------------------------------------------------------------------
// Socket backend
// ---------------------------------------------------------------------------

struct FrameReader {
    stream: BufReader<TcpStream>,
    scratch: Vec<u8>,
}

struct PeerConn {
    tx: Option<Sender<Vec<u8>>>,
    writer: Option<JoinHandle<()>>,
    reader: Mutex<FrameReader>,
}

impl PeerConn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(io_timeout_ms())))?;
        let mut write_half = stream.try_clone()?;
        let (tx, rx) = channel::<Vec<u8>>();
        let writer = std::thread::spawn(move || {
            while let Ok(frame) = rx.recv() {
                if write_half.write_all(&frame).is_err() {
                    // Peer is gone; drain remaining frames so senders never
                    // block, and let the receive side surface the error.
                    break;
                }
            }
        });
        Ok(PeerConn {
            tx: Some(tx),
            writer: Some(writer),
            reader: Mutex::new(FrameReader {
                stream: BufReader::new(stream),
                scratch: Vec::new(),
            }),
        })
    }

    fn finish(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PeerConn {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Socket backend endpoint: a full loopback `TcpStream` mesh between real OS
/// processes. Sends encode a length-prefixed frame and hand it to a
/// per-connection writer thread (buffered, so split-phase sends never
/// block); receives read frames under a per-connection lock. A peer whose
/// process exits closes its streams, which readers observe as EOF →
/// [`TransportError::PeerClosed`].
pub struct SocketTransport {
    rank: usize,
    nranks: usize,
    conns: Vec<Option<PeerConn>>,
    wire: WireStats,
}

impl SocketTransport {
    fn conn(&self, peer: usize, verb: &str) -> Result<&PeerConn, TransportError> {
        if peer >= self.nranks || peer == self.rank {
            return Err(TransportError::Protocol {
                detail: format!(
                    "rank {} cannot {verb} rank {peer} in a world of {}",
                    self.rank, self.nranks
                ),
            });
        }
        Ok(self.conns[peer]
            .as_ref()
            .expect("conn present for valid peer"))
    }

    fn send_inner(&self, dst: usize, payload: &[f64], count: bool) -> Result<(), TransportError> {
        let conn = self.conn(dst, "send to")?;
        let t0 = Instant::now();
        let mut frame = Vec::new();
        encode_frame(payload, &mut frame);
        let tx = conn.tx.as_ref().expect("writer tx alive until finish");
        if tx.send(frame).is_err() {
            return Err(TransportError::PeerClosed {
                rank: self.rank,
                peer: dst,
            });
        }
        if count {
            self.wire
                .record_send(payload.len() * 8, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn recv_inner(
        &self,
        src: usize,
        buf: &mut Vec<f64>,
        count: bool,
    ) -> Result<(), TransportError> {
        let conn = self.conn(src, "receive from")?;
        let t0 = Instant::now();
        let mut rd = conn.reader.lock().unwrap_or_else(|e| e.into_inner());
        let FrameReader { stream, scratch } = &mut *rd;
        match read_exact_frame(stream, scratch, buf) {
            Ok(()) => {
                if count {
                    self.wire
                        .record_recv(buf.len() * 8, t0.elapsed().as_nanos() as u64);
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(TransportError::PeerClosed {
                    rank: self.rank,
                    peer: src,
                })
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::Io {
                    rank: self.rank,
                    detail: format!("timed out waiting for rank {src}"),
                })
            }
            Err(e) => Err(TransportError::Io {
                rank: self.rank,
                detail: format!("recv from rank {src}: {e}"),
            }),
        }
    }

    /// Flush and join every writer thread. Call before `process::exit` so
    /// frames already posted are guaranteed on the wire.
    pub fn finish(&mut self) {
        for conn in self.conns.iter_mut().flatten() {
            conn.finish();
        }
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }
    fn nranks(&self) -> usize {
        self.nranks
    }
    fn send(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError> {
        self.send_inner(dst, payload, true)
    }
    fn recv_into(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError> {
        self.recv_inner(src, buf, true)
    }
    fn wire(&self) -> &WireStats {
        &self.wire
    }
    fn send_ctl(&self, dst: usize, payload: &[f64]) -> Result<(), TransportError> {
        self.send_inner(dst, payload, false)
    }
    fn recv_ctl(&self, src: usize, buf: &mut Vec<f64>) -> Result<(), TransportError> {
        self.recv_inner(src, buf, false)
    }
}

fn io_err(rank: usize, what: &str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        rank,
        detail: format!("{what}: {e}"),
    }
}

/// Bootstrap the parent (rank 0) side of a socket mesh: bind a rendezvous
/// listener, spawn `nranks - 1` worker processes running `exe` (the current
/// executable when `None`) with `args`, collect their hellos, broadcast the
/// port table, and return rank 0's endpoint plus the child handles.
///
/// Environment given to children: `KRYST_RANK`, `KRYST_WORLD`,
/// `KRYST_SPMD_ADDR` (the rendezvous address), `KRYST_SPMD_MODE`, plus
/// `extra_env`.
pub(crate) fn spawn_world(
    nranks: usize,
    mode: &str,
    exe: Option<&std::path::Path>,
    args: &[String],
    extra_env: &[(String, String)],
) -> Result<(SocketTransport, Vec<std::process::Child>), TransportError> {
    assert!(nranks >= 2, "socket mesh needs at least 2 ranks");
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(0, "bind rendezvous listener", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| io_err(0, "rendezvous local_addr", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err(0, "set rendezvous nonblocking", e))?;

    let exe_path = match exe {
        Some(p) => p.to_path_buf(),
        None => std::env::current_exe().map_err(|e| io_err(0, "current_exe", e))?,
    };
    let verbose = matches!(std::env::var("KRYST_SPMD_VERBOSE"), Ok(v) if v == "1");
    let mut children = Vec::with_capacity(nranks - 1);
    for r in 1..nranks {
        let mut cmd = std::process::Command::new(&exe_path);
        cmd.args(args)
            .env("KRYST_RANK", r.to_string())
            .env("KRYST_WORLD", nranks.to_string())
            .env("KRYST_SPMD_ADDR", addr.to_string())
            .env("KRYST_SPMD_MODE", mode)
            .env_remove("KRYST_SPMD_CALL")
            .env_remove("KRYST_SPMD_THREAD")
            .stdin(std::process::Stdio::null());
        if verbose {
            cmd.stdout(std::process::Stdio::inherit())
                .stderr(std::process::Stdio::inherit());
        } else {
            cmd.stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
        }
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        match cmd.spawn() {
            Ok(c) => children.push(c),
            Err(e) => {
                kill_children(&mut children);
                return Err(TransportError::Spawn {
                    detail: format!("spawn rank {r} ({}): {e}", exe_path.display()),
                });
            }
        }
    }

    // Accept one hello per child: frame [rank, listen_port].
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut pending: HashMap<usize, (TcpStream, u16)> = HashMap::new();
    while pending.len() < nranks - 1 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| io_err(0, "set accepted stream blocking", e))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .map_err(|e| io_err(0, "set hello timeout", e))?;
                let mut hello = Vec::new();
                read_frame_stream(&mut stream, &mut hello).map_err(|e| {
                    kill_children(&mut children);
                    io_err(0, "read hello", e)
                })?;
                if hello.len() != 2 {
                    kill_children(&mut children);
                    return Err(TransportError::Protocol {
                        detail: format!("hello frame has {} elements, expected 2", hello.len()),
                    });
                }
                let (rank, port) = (hello[0] as usize, hello[1] as u16);
                if rank == 0 || rank >= nranks || pending.contains_key(&rank) {
                    kill_children(&mut children);
                    return Err(TransportError::Protocol {
                        detail: format!("bad or duplicate hello from rank {rank}"),
                    });
                }
                pending.insert(rank, (stream, port));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    kill_children(&mut children);
                    return Err(TransportError::Spawn {
                        detail: "timed out waiting for worker hellos".into(),
                    });
                }
                // Surface a worker that died before saying hello.
                for (i, c) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = c.try_wait() {
                        let rank = i + 1;
                        kill_children(&mut children);
                        return Err(TransportError::RankFailed {
                            rank,
                            detail: format!("worker exited during bootstrap: {status}"),
                        });
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                kill_children(&mut children);
                return Err(io_err(0, "accept hello", e));
            }
        }
    }

    // Broadcast the port table [port_1, ..., port_{p-1}] to every child.
    let table: Vec<f64> = (1..nranks).map(|r| pending[&r].1 as f64).collect();
    for (_, (stream, _)) in pending.iter_mut() {
        write_frame_stream(stream, &table).map_err(|e| {
            let mut cs = std::mem::take(&mut children);
            kill_children(&mut cs);
            io_err(0, "send port table", e)
        })?;
    }

    let mut conns: Vec<Option<PeerConn>> = (0..nranks).map(|_| None).collect();
    for (rank, (stream, _)) in pending {
        conns[rank] = Some(PeerConn::new(stream).map_err(|e| io_err(0, "wrap peer conn", e))?);
    }
    Ok((
        SocketTransport {
            rank: 0,
            nranks,
            conns,
            wire: WireStats::default(),
        },
        children,
    ))
}

/// Kill and reap every child process (best effort; used on error paths).
pub(crate) fn kill_children(children: &mut [std::process::Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    for c in children.iter_mut() {
        let _ = c.wait();
    }
}

/// Bootstrap the child (rank ≥ 1) side of a socket mesh from the
/// `KRYST_RANK` / `KRYST_WORLD` / `KRYST_SPMD_ADDR` environment: say hello to
/// the rendezvous listener, receive the port table, connect to every lower
/// rank and accept from every higher one.
pub(crate) fn child_mesh() -> Result<SocketTransport, TransportError> {
    let rank: usize = std::env::var("KRYST_RANK")
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TransportError::Protocol {
            detail: "KRYST_RANK missing or unparsable in worker".into(),
        })?;
    let nranks: usize = std::env::var("KRYST_WORLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TransportError::Protocol {
            detail: "KRYST_WORLD missing or unparsable in worker".into(),
        })?;
    let addr: SocketAddr = std::env::var("KRYST_SPMD_ADDR")
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TransportError::Protocol {
            detail: "KRYST_SPMD_ADDR missing or unparsable in worker".into(),
        })?;

    // Own listener for connections from higher ranks.
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(rank, "bind worker listener", e))?;
    let my_port = listener
        .local_addr()
        .map_err(|e| io_err(rank, "worker local_addr", e))?
        .port();

    // Connect to the rendezvous (rank 0) with retry — the parent may still
    // be spawning siblings.
    let mut parent = connect_retry(rank, addr)?;
    write_frame_stream(&mut parent, &[rank as f64, my_port as f64])
        .map_err(|e| io_err(rank, "send hello", e))?;
    parent
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| io_err(rank, "set table timeout", e))?;
    let mut table = Vec::new();
    read_frame_stream(&mut parent, &mut table).map_err(|e| io_err(rank, "read port table", e))?;
    if table.len() != nranks - 1 {
        return Err(TransportError::Protocol {
            detail: format!(
                "port table has {} entries, expected {}",
                table.len(),
                nranks - 1
            ),
        });
    }

    let mut conns: Vec<Option<PeerConn>> = (0..nranks).map(|_| None).collect();
    conns[0] = Some(PeerConn::new(parent).map_err(|e| io_err(rank, "wrap parent conn", e))?);

    // Connect to lower ranks 1..rank (their ports are table[s-1]).
    for s in 1..rank {
        let peer_addr: SocketAddr = format!("127.0.0.1:{}", table[s - 1] as u16)
            .parse()
            .expect("loopback addr parses");
        let mut stream = connect_retry(rank, peer_addr)?;
        write_frame_stream(&mut stream, &[rank as f64])
            .map_err(|e| io_err(rank, "send peer hello", e))?;
        conns[s] = Some(PeerConn::new(stream).map_err(|e| io_err(rank, "wrap peer conn", e))?);
    }

    // Accept from higher ranks rank+1..nranks.
    for _ in rank + 1..nranks {
        let (mut stream, _) = listener
            .accept()
            .map_err(|e| io_err(rank, "accept higher-rank conn", e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| io_err(rank, "set peer hello timeout", e))?;
        let mut hello = Vec::new();
        read_frame_stream(&mut stream, &mut hello)
            .map_err(|e| io_err(rank, "read peer hello", e))?;
        if hello.len() != 1 {
            return Err(TransportError::Protocol {
                detail: format!("peer hello has {} elements, expected 1", hello.len()),
            });
        }
        let peer = hello[0] as usize;
        if peer <= rank || peer >= nranks || conns[peer].is_some() {
            return Err(TransportError::Protocol {
                detail: format!("bad or duplicate peer hello from rank {peer}"),
            });
        }
        conns[peer] = Some(PeerConn::new(stream).map_err(|e| io_err(rank, "wrap peer conn", e))?);
    }

    Ok(SocketTransport {
        rank,
        nranks,
        conns,
        wire: WireStats::default(),
    })
}

fn connect_retry(rank: usize, addr: SocketAddr) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(io_err(rank, "connect", e));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE, 1e300];
        let mut bytes = Vec::new();
        encode_frame(&payload, &mut bytes);
        assert_eq!(bytes.len(), 4 + payload.len() * 8);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        read_exact_frame(&mut bytes.as_slice(), &mut scratch, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn channel_mesh_send_recv_and_counters() {
        let mut mesh = channel_mesh(3);
        let t2 = mesh.pop().unwrap();
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        t0.send(1, &[1.0, 2.0]).unwrap();
        t2.send(1, &[3.0]).unwrap();
        assert_eq!(t1.recv(0).unwrap(), vec![1.0, 2.0]);
        assert_eq!(t1.recv(2).unwrap(), vec![3.0]);
        let w = t1.wire().snapshot();
        assert_eq!(w.msgs_recv, 2);
        assert_eq!(w.bytes_recv, 24);
        assert_eq!(t0.wire().snapshot().msgs_sent, 1);
        // Control-plane traffic is excluded from the counters.
        t0.send_ctl(1, &[9.0]).unwrap();
        let mut buf = Vec::new();
        t1.recv_ctl(0, &mut buf).unwrap();
        assert_eq!(buf, vec![9.0]);
        assert_eq!(t0.wire().snapshot().msgs_sent, 1);
        assert_eq!(t1.wire().snapshot().msgs_recv, 2);
    }

    #[test]
    fn channel_peer_death_is_typed() {
        let mut mesh = channel_mesh(2);
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        drop(t1);
        assert_eq!(
            t0.recv(1),
            Err(TransportError::PeerClosed { rank: 0, peer: 1 })
        );
        assert_eq!(
            t0.send(1, &[1.0]),
            Err(TransportError::PeerClosed { rank: 0, peer: 1 })
        );
    }

    #[test]
    fn out_of_range_peer_is_protocol_error() {
        let mut mesh = channel_mesh(2);
        let t0 = mesh.remove(0);
        assert!(matches!(
            t0.send(5, &[1.0]),
            Err(TransportError::Protocol { .. })
        ));
        assert!(matches!(t0.recv(0), Err(TransportError::Protocol { .. })));
    }
}
