//! Operator and preconditioner abstractions.
//!
//! The solvers in `kryst-core` are written against [`LinOp`] and
//! [`PrecondOp`] so the same GCRO-DR code runs on a plain [`Csr`] (tests),
//! an instrumented [`DistOp`] (scaling experiments), or a shell/composite
//! operator (the projected operator `(I − C_k·C_kᴴ)·A` of Fig. 1 line 26).

use crate::halo::HaloPlan;
use crate::{CommStats, Layout};
use kryst_dense::DMat;
use kryst_obs::{profile, Event, HaloEvent, Phase, Recorder};
use kryst_scalar::Scalar;
use kryst_sparse::{Csr, RowSplit};
use std::sync::Arc;
use std::time::Instant;

/// A linear operator `y = A·x` acting on multivectors.
pub trait LinOp<S: Scalar>: Send + Sync {
    /// Number of rows (= columns; operators here are square).
    fn nrows(&self) -> usize;
    /// `y ⟵ A·x` where `x` and `y` are `n × p`.
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>);
    /// Allocating convenience wrapper.
    fn apply_new(&self, x: &DMat<S>) -> DMat<S> {
        let mut y = DMat::zeros(self.nrows(), x.ncols());
        self.apply(x, &mut y);
        y
    }
}

/// A preconditioner `z = M⁻¹·r`.
pub trait PrecondOp<S: Scalar>: Send + Sync {
    /// Problem size.
    fn nrows(&self) -> usize;
    /// `z ⟵ M⁻¹·r`.
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>);
    /// True when the preconditioner is nonlinear / nondeterministic (e.g. an
    /// inner Krylov smoother), which forces the flexible solver variants —
    /// exactly the situation of the paper's §III-C.
    fn is_variable(&self) -> bool {
        false
    }
    /// Allocating convenience wrapper.
    fn apply_new(&self, r: &DMat<S>) -> DMat<S> {
        let mut z = DMat::zeros(self.nrows(), r.ncols());
        self.apply(r, &mut z);
        z
    }
}

impl<S: Scalar> LinOp<S> for Csr<S> {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let _t = profile(Phase::Spmv);
        self.spmm(x, y);
    }
}

/// The identity preconditioner (unpreconditioned solves).
#[derive(Debug, Clone)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl<S: Scalar> PrecondOp<S> for IdentityPrecond {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        z.copy_from(r);
    }
}

/// An instrumented, "distributed" sparse operator.
///
/// Arithmetic is performed on the full matrix with thread-parallel kernels
/// (bit-identical to the sharded SPMD execution); every `apply` additionally
/// records the halo-exchange messages and the local flops that a real
/// distributed run over [`Layout`] would incur.
///
/// The SpMM is **overlapped**: rows whose couplings stay inside their
/// owner's range (the [`RowSplit`] interior) are computed first — in a real
/// run they proceed while the halo exchange is on the wire — and the
/// boundary rows finish after the exchange. The interior flops are reported
/// via `record_overlap_flops`, which lets the cost model charge
/// `max(interior_compute, halo_message)` instead of their sum. Both halves
/// use the same per-row kernel, so the result stays bit-identical to the
/// unsplit product.
pub struct DistOp<S> {
    a: Csr<S>,
    layout: Layout,
    plan: HaloPlan,
    split: RowSplit,
    stats: Arc<CommStats>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<S: Scalar> DistOp<S> {
    /// Wrap `a`, distributed block-row over `nranks` ranks, reporting to
    /// `stats`.
    pub fn new(a: Csr<S>, nranks: usize, stats: Arc<CommStats>) -> Self {
        let layout = Layout::even(a.nrows(), nranks);
        let plan = HaloPlan::build(&a, &layout);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..layout.nranks()).map(|r| layout.range(r)).collect();
        let split = RowSplit::build(&a, &ranges);
        Self {
            a,
            layout,
            plan,
            split,
            stats,
            recorder: None,
        }
    }

    /// Attach an event recorder: every `apply` emits a [`HaloEvent`]
    /// describing the halo exchange the distributed SpMM performs.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = if rec.enabled() { Some(rec) } else { None };
    }

    /// Builder-style variant of [`DistOp::set_recorder`].
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.set_recorder(rec);
        self
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr<S> {
        &self.a
    }

    /// The rank layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The halo plan (message pattern per SpMM).
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// The interior/boundary row split driving the overlapped apply.
    pub fn split(&self) -> &RowSplit {
        &self.split
    }

    /// The counters this operator reports to.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    fn bytes_per_scalar() -> usize {
        S::real_words() * std::mem::size_of::<f64>()
    }
}

impl<S: Scalar> LinOp<S> for DistOp<S> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let t0 = Instant::now();
        let p = x.ncols();
        let bytes = self.plan.bytes_per_exchange(p, Self::bytes_per_scalar());
        // 2 flops per stored nonzero per RHS column (multiply–add); complex
        // scalars cost 4× the real multiply–add.
        let flop_scale = if S::is_complex() { 4 } else { 1 };
        self.stats.record_flops(2 * self.a.nnz() * p * flop_scale);
        if self.split.all_interior() {
            self.stats
                .record_p2p(self.plan.messages_per_exchange, bytes);
            let _t = profile(Phase::Spmv);
            self.a.spmm(x, y);
        } else {
            // Overlapped schedule: interior rows proceed while the halo
            // exchange is in flight, boundary rows finish afterwards. The
            // interior product is attributed to `spmv`; the exchange
            // accounting plus the post-exchange boundary rows to `halo`.
            {
                let _t = profile(Phase::Spmv);
                self.a.spmm_rows(x, y, &self.split.interior);
            }
            self.stats
                .record_overlap_flops(2 * self.split.interior_nnz * p * flop_scale);
            let _h = profile(Phase::Halo);
            self.stats
                .record_p2p(self.plan.messages_per_exchange, bytes);
            self.a.spmm_rows(x, y, &self.split.boundary);
        }
        if let Some(rec) = &self.recorder {
            rec.record(&Event::Halo(HaloEvent {
                messages: self.plan.messages_per_exchange as u64,
                bytes: bytes as u64,
                cols: p,
                wall_ns: t0.elapsed().as_nanos() as u64,
            }));
        }
    }
}

/// Composite operator `(I − C·Cᴴ)·A` — the projected operator GCRO-DR runs
/// its inner Arnoldi with (Fig. 1 line 26). Applying it costs one `A·x` and
/// one block dot + update, i.e. **one extra global reduction per iteration**,
/// which is precisely the overhead §III-D attributes to recycling.
pub struct ProjectedOp<'a, S: Scalar> {
    /// Inner operator `A`.
    pub inner: &'a dyn LinOp<S>,
    /// Orthonormal block `C` (n × k·p).
    pub c: &'a DMat<S>,
    /// Counters for the projection reduction (optional).
    pub stats: Option<&'a CommStats>,
}

impl<S: Scalar> LinOp<S> for ProjectedOp<'_, S> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        self.inner.apply(x, y);
        // y ⟵ y − C·(Cᴴ·y): one fused reduction for the Gram product.
        let coeff = {
            let _t = profile(Phase::Reduction);
            kryst_dense::blas::adjoint_times(self.c, y)
        };
        if let Some(st) = self.stats {
            st.record_reduction(std::mem::size_of_val(coeff.as_slice()));
        }
        kryst_dense::blas::gemm(
            -S::one(),
            self.c,
            kryst_dense::Op::None,
            &coeff,
            kryst_dense::Op::None,
            S::one(),
            y,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn dist_op_counts_messages_and_flops() {
        let a = laplace1d(64);
        let nnz = a.nnz();
        let stats = CommStats::new_shared();
        let op = DistOp::new(a, 4, Arc::clone(&stats));
        let x = DMat::from_fn(64, 3, |i, j| (i + j) as f64);
        let _y = op.apply_new(&x);
        let snap = stats.snapshot();
        assert_eq!(snap.p2p_messages as usize, op.plan().messages_per_exchange);
        assert_eq!(snap.flops as usize, 2 * nnz * 3);
        // Result equals the plain SpMM.
        let y2 = op.matrix().apply(&x);
        let y1 = op.apply_new(&x);
        for i in 0..64 {
            for j in 0..3 {
                assert_eq!(y1[(i, j)], y2[(i, j)]);
            }
        }
    }

    #[test]
    fn overlapped_apply_records_interior_flops_and_stays_bit_identical() {
        let a = laplace1d(64);
        let stats = CommStats::new_shared();
        let op = DistOp::new(a.clone(), 4, Arc::clone(&stats));
        assert!(!op.split().all_interior());
        let x = DMat::from_fn(64, 5, |i, j| ((i * 3 + j) % 11) as f64 - 5.0);
        let y = op.apply_new(&x);
        // Bit-identical to the unsplit SpMM.
        let y_plain = a.apply(&x);
        for i in 0..64 {
            for j in 0..5 {
                assert_eq!(y[(i, j)].to_bits(), y_plain[(i, j)].to_bits());
            }
        }
        let snap = stats.snapshot();
        // Total flops unchanged; interior portion flagged overlappable.
        assert_eq!(snap.flops as usize, 2 * a.nnz() * 5);
        assert_eq!(snap.overlap_flops as usize, 2 * op.split().interior_nnz * 5);
        assert!(snap.overlap_flops > 0 && snap.overlap_flops < snap.flops);
        // Single rank: no halo, nothing to overlap.
        let stats1 = CommStats::new_shared();
        let op1 = DistOp::new(a, 1, Arc::clone(&stats1));
        assert!(op1.split().all_interior());
        let _ = op1.apply_new(&x);
        assert_eq!(stats1.snapshot().overlap_flops, 0);
    }

    #[test]
    fn projected_op_annihilates_c_components() {
        let a = laplace1d(30);
        // C = first 2 canonical directions, orthonormal.
        let mut c = DMat::<f64>::zeros(30, 2);
        c[(0, 0)] = 1.0;
        c[(5, 1)] = 1.0;
        let stats = CommStats::default();
        let op = ProjectedOp {
            inner: &a,
            c: &c,
            stats: Some(&stats),
        };
        let x = DMat::from_fn(30, 1, |i, _| 1.0 + i as f64);
        let y = op.apply_new(&x);
        // Cᴴ y = 0.
        let g = kryst_dense::blas::adjoint_times(&c, &y);
        assert!(g.max_abs() < 1e-12);
        assert_eq!(stats.snapshot().reductions, 1);
    }

    #[test]
    fn identity_precond_copies() {
        let m = IdentityPrecond::new(5);
        let r = DMat::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let z = PrecondOp::<f64>::apply_new(&m, &r);
        assert_eq!(z, r);
        assert!(!PrecondOp::<f64>::is_variable(&m));
    }
}
