//! Operator and preconditioner abstractions.
//!
//! The solvers in `kryst-core` are written against [`LinOp`] and
//! [`PrecondOp`] so the same GCRO-DR code runs on a plain [`Csr`] (tests),
//! an instrumented [`DistOp`] (scaling experiments), or a shell/composite
//! operator (the projected operator `(I − C_k·C_kᴴ)·A` of Fig. 1 line 26).

use crate::halo::HaloPlan;
use crate::{CommStats, Layout};
use kryst_dense::DMat;
use kryst_obs::{profile, Event, HaloEvent, Phase, Recorder};
use kryst_scalar::Scalar;
use kryst_sparse::{Csr, RowSplit};
use std::sync::Arc;
use std::time::Instant;

/// Storage/arithmetic precision of a preconditioner's internal data.
///
/// [`Full`](PrecondPrecision::Full) keeps factors, hierarchy operators, and
/// smoother data in the working scalar `S`. [`Single`](PrecondPrecision::Single)
/// stores them in the low-precision partner (`f32` for `f64`, `C32` for
/// `C64`) and promotes on the fly inside the apply — roughly halving the
/// bytes streamed per iteration while the outer Krylov iteration stays in
/// full precision. Flexible solver variants (FGMRES/LGMRES/GCRO-DR) absorb
/// the resulting iteration-to-iteration rounding variation; plain GMRES
/// warns via the tracer when paired with a `Single` preconditioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecondPrecision {
    /// Working-precision storage (default).
    #[default]
    Full,
    /// Low-precision (`f32`-component) storage with on-the-fly promotion.
    Single,
}

impl PrecondPrecision {
    /// Resolve from the environment: `KRYST_PRECOND_F32=1` (or `true`)
    /// selects [`PrecondPrecision::Single`], anything else
    /// [`PrecondPrecision::Full`].
    pub fn from_env() -> Self {
        match std::env::var("KRYST_PRECOND_F32") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => PrecondPrecision::Single,
            _ => PrecondPrecision::Full,
        }
    }

    /// Stable lowercase name (`"full"` / `"single"`).
    pub fn name(self) -> &'static str {
        match self {
            PrecondPrecision::Full => "full",
            PrecondPrecision::Single => "single",
        }
    }
}

/// A linear operator `y = A·x` acting on multivectors.
pub trait LinOp<S: Scalar>: Send + Sync {
    /// Number of rows (= columns; operators here are square).
    fn nrows(&self) -> usize;
    /// `y ⟵ A·x` where `x` and `y` are `n × p`.
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>);
    /// Allocating convenience wrapper.
    fn apply_new(&self, x: &DMat<S>) -> DMat<S> {
        let mut y = DMat::zeros(self.nrows(), x.ncols());
        self.apply(x, &mut y);
        y
    }
    /// Bytes of *operator data* (values, indices, row pointers — not the
    /// multivectors) streamed by one apply, when the operator can account
    /// for it. Matrix-free operators report their constant geometric
    /// footprint; `None` means unknown.
    fn bytes_per_apply(&self) -> Option<usize> {
        None
    }
}

/// A preconditioner `z = M⁻¹·r`.
pub trait PrecondOp<S: Scalar>: Send + Sync {
    /// Problem size.
    fn nrows(&self) -> usize;
    /// `z ⟵ M⁻¹·r`.
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>);
    /// True when the preconditioner is nonlinear / nondeterministic (e.g. an
    /// inner Krylov smoother), which forces the flexible solver variants —
    /// exactly the situation of the paper's §III-C.
    fn is_variable(&self) -> bool {
        false
    }
    /// Storage precision of the preconditioner's internal data. Solvers use
    /// this to warn when a non-flexible method is paired with a
    /// [`PrecondPrecision::Single`] preconditioner.
    fn precision(&self) -> PrecondPrecision {
        PrecondPrecision::Full
    }
    /// Bytes of preconditioner data streamed by one apply (estimate;
    /// `None` means unknown). See [`LinOp::bytes_per_apply`].
    fn bytes_per_apply(&self) -> Option<usize> {
        None
    }
    /// Allocating convenience wrapper.
    fn apply_new(&self, r: &DMat<S>) -> DMat<S> {
        let mut z = DMat::zeros(self.nrows(), r.ncols());
        self.apply(r, &mut z);
        z
    }
}

/// Row-subset operator application — the contract the overlapped [`DistOp`]
/// schedule needs from a matrix-free operator: `Y(rows,:) ⟵ A(rows,:)·X`
/// with rows outside the set untouched, plus a full-range apply. Implemented
/// by assembled [`Csr`] (delegating to the SpMM kernels) and by the stencil
/// operators in `kryst-pde`, so interior/boundary halo-compute overlap works
/// identically for both.
pub trait ApplyRows<S: Scalar>: Send + Sync {
    /// Operator dimension (square).
    fn nrows(&self) -> usize;
    /// `Y ⟵ A·X` over all rows.
    fn apply_all(&self, x: &DMat<S>, y: &mut DMat<S>);
    /// `Y(rows,:) ⟵ A(rows,:)·X`; rows outside `rows` are left untouched.
    fn apply_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]);
    /// Bytes of operator data streamed by one full apply (see
    /// [`LinOp::bytes_per_apply`]).
    fn bytes_streamed(&self) -> usize;
}

impl<S: Scalar> ApplyRows<S> for Csr<S> {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }
    fn apply_all(&self, x: &DMat<S>, y: &mut DMat<S>) {
        self.spmm(x, y);
    }
    fn apply_rows(&self, x: &DMat<S>, y: &mut DMat<S>, rows: &[usize]) {
        self.spmm_rows(x, y, rows);
    }
    fn bytes_streamed(&self) -> usize {
        self.nnz() * (std::mem::size_of::<S>() + std::mem::size_of::<usize>())
            + (Csr::nrows(self) + 1) * std::mem::size_of::<usize>()
    }
}

impl<S: Scalar> LinOp<S> for Csr<S> {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let _t = profile(Phase::Spmv);
        self.spmm(x, y);
    }
    fn bytes_per_apply(&self) -> Option<usize> {
        Some(ApplyRows::<S>::bytes_streamed(self))
    }
}

/// The identity preconditioner (unpreconditioned solves).
#[derive(Debug, Clone)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Identity of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl<S: Scalar> PrecondOp<S> for IdentityPrecond {
    fn nrows(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &DMat<S>, z: &mut DMat<S>) {
        z.copy_from(r);
    }
}

/// An instrumented, "distributed" sparse operator.
///
/// Arithmetic is performed on the full matrix with thread-parallel kernels
/// (bit-identical to the sharded SPMD execution); every `apply` additionally
/// records the halo-exchange messages and the local flops that a real
/// distributed run over [`Layout`] would incur.
///
/// The SpMM is **overlapped**: rows whose couplings stay inside their
/// owner's range (the [`RowSplit`] interior) are computed first — in a real
/// run they proceed while the halo exchange is on the wire — and the
/// boundary rows finish after the exchange. The interior flops are reported
/// via `record_overlap_flops`, which lets the cost model charge
/// `max(interior_compute, halo_message)` instead of their sum. Both halves
/// use the same per-row kernel, so the result stays bit-identical to the
/// unsplit product.
pub struct DistOp<S> {
    a: Csr<S>,
    layout: Layout,
    plan: HaloPlan,
    split: RowSplit,
    stats: Arc<CommStats>,
    recorder: Option<Arc<dyn Recorder>>,
    mf: Option<Arc<dyn ApplyRows<S>>>,
}

impl<S: Scalar> DistOp<S> {
    /// Wrap `a`, distributed block-row over `nranks` ranks, reporting to
    /// `stats`.
    pub fn new(a: Csr<S>, nranks: usize, stats: Arc<CommStats>) -> Self {
        let layout = Layout::even(a.nrows(), nranks);
        let plan = HaloPlan::build(&a, &layout);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..layout.nranks()).map(|r| layout.range(r)).collect();
        let split = RowSplit::build(&a, &ranges);
        Self {
            a,
            layout,
            plan,
            split,
            stats,
            recorder: None,
            mf: None,
        }
    }

    /// Swap the SpMM kernel for a matrix-free applier (e.g. a geometric
    /// stencil from `kryst-pde`): the assembled matrix is kept for the halo
    /// plan and interior/boundary split, but `apply` streams zero index data
    /// and is attributed to the `spmv_mf` profiler phase. The overlapped
    /// interior/boundary schedule is unchanged.
    pub fn with_matrix_free(mut self, op: Arc<dyn ApplyRows<S>>) -> Self {
        assert_eq!(
            op.nrows(),
            self.a.nrows(),
            "matrix-free applier dimension must match the assembled operator"
        );
        self.mf = Some(op);
        self
    }

    /// Whether a matrix-free applier is installed.
    pub fn is_matrix_free(&self) -> bool {
        self.mf.is_some()
    }

    /// Attach an event recorder: every `apply` emits a [`HaloEvent`]
    /// describing the halo exchange the distributed SpMM performs.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.recorder = if rec.enabled() { Some(rec) } else { None };
    }

    /// Builder-style variant of [`DistOp::set_recorder`].
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.set_recorder(rec);
        self
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr<S> {
        &self.a
    }

    /// The rank layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The halo plan (message pattern per SpMM).
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// The interior/boundary row split driving the overlapped apply.
    pub fn split(&self) -> &RowSplit {
        &self.split
    }

    /// The counters this operator reports to.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Execute this operator's halo exchange over a real [`Transport`]
    /// (`cols`-wide multivector payloads): the wire-level counterpart of the
    /// counted exchange the instrumented `apply` reports. Returns the scalar
    /// entries received by the calling rank. The transport world must match
    /// the operator's layout.
    pub fn wire_exchange<T: crate::transport::Transport + ?Sized>(
        &self,
        t: &T,
        cols: usize,
    ) -> Result<usize, crate::transport::TransportError> {
        self.plan.execute(t, cols, 1.0)
    }

    fn bytes_per_scalar() -> usize {
        S::real_words() * std::mem::size_of::<f64>()
    }
}

impl<S: Scalar> LinOp<S> for DistOp<S> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        let t0 = Instant::now();
        let p = x.ncols();
        let bytes = self.plan.bytes_per_exchange(p, Self::bytes_per_scalar());
        // 2 flops per stored nonzero per RHS column (multiply–add); complex
        // scalars cost 4× the real multiply–add.
        let flop_scale = if S::is_complex() { 4 } else { 1 };
        self.stats.record_flops(2 * self.a.nnz() * p * flop_scale);
        // The matrix-free applier (when installed) replaces the assembled
        // SpMM in both branches and is attributed to its own phase.
        let (kernel, phase): (&dyn ApplyRows<S>, Phase) = match &self.mf {
            Some(mf) => (mf.as_ref(), Phase::SpmvMf),
            None => (&self.a, Phase::Spmv),
        };
        if self.split.all_interior() {
            self.stats
                .record_p2p(self.plan.messages_per_exchange, bytes);
            let _t = profile(phase);
            kernel.apply_all(x, y);
        } else {
            // Overlapped schedule: interior rows proceed while the halo
            // exchange is in flight, boundary rows finish afterwards. The
            // interior product is attributed to `spmv` (or `spmv_mf`); the
            // exchange accounting plus the post-exchange boundary rows to
            // `halo`.
            {
                let _t = profile(phase);
                kernel.apply_rows(x, y, &self.split.interior);
            }
            self.stats
                .record_overlap_flops(2 * self.split.interior_nnz * p * flop_scale);
            let _h = profile(Phase::Halo);
            self.stats
                .record_p2p(self.plan.messages_per_exchange, bytes);
            kernel.apply_rows(x, y, &self.split.boundary);
        }
        if let Some(rec) = &self.recorder {
            rec.record(&Event::Halo(HaloEvent {
                messages: self.plan.messages_per_exchange as u64,
                bytes: bytes as u64,
                cols: p,
                wall_ns: t0.elapsed().as_nanos() as u64,
            }));
        }
    }
    fn bytes_per_apply(&self) -> Option<usize> {
        match &self.mf {
            Some(mf) => Some(mf.bytes_streamed()),
            None => Some(ApplyRows::<S>::bytes_streamed(&self.a)),
        }
    }
}

/// Composite operator `(I − C·Cᴴ)·A` — the projected operator GCRO-DR runs
/// its inner Arnoldi with (Fig. 1 line 26). Applying it costs one `A·x` and
/// one block dot + update, i.e. **one extra global reduction per iteration**,
/// which is precisely the overhead §III-D attributes to recycling.
pub struct ProjectedOp<'a, S: Scalar> {
    /// Inner operator `A`.
    pub inner: &'a dyn LinOp<S>,
    /// Orthonormal block `C` (n × k·p).
    pub c: &'a DMat<S>,
    /// Counters for the projection reduction (optional).
    pub stats: Option<&'a CommStats>,
}

impl<S: Scalar> LinOp<S> for ProjectedOp<'_, S> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn apply(&self, x: &DMat<S>, y: &mut DMat<S>) {
        self.inner.apply(x, y);
        // y ⟵ y − C·(Cᴴ·y): one fused reduction for the Gram product.
        let coeff = {
            let _t = profile(Phase::Reduction);
            kryst_dense::blas::adjoint_times(self.c, y)
        };
        if let Some(st) = self.stats {
            st.record_reduction(std::mem::size_of_val(coeff.as_slice()));
        }
        kryst_dense::blas::gemm(
            -S::one(),
            self.c,
            kryst_dense::Op::None,
            &coeff,
            kryst_dense::Op::None,
            S::one(),
            y,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kryst_sparse::Coo;

    fn laplace1d(n: usize) -> Csr<f64> {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn dist_op_counts_messages_and_flops() {
        let a = laplace1d(64);
        let nnz = a.nnz();
        let stats = CommStats::new_shared();
        let op = DistOp::new(a, 4, Arc::clone(&stats));
        let x = DMat::from_fn(64, 3, |i, j| (i + j) as f64);
        let _y = op.apply_new(&x);
        let snap = stats.snapshot();
        assert_eq!(snap.p2p_messages as usize, op.plan().messages_per_exchange);
        assert_eq!(snap.flops as usize, 2 * nnz * 3);
        // Result equals the plain SpMM.
        let y2 = op.matrix().apply(&x);
        let y1 = op.apply_new(&x);
        for i in 0..64 {
            for j in 0..3 {
                assert_eq!(y1[(i, j)], y2[(i, j)]);
            }
        }
    }

    #[test]
    fn overlapped_apply_records_interior_flops_and_stays_bit_identical() {
        let a = laplace1d(64);
        let stats = CommStats::new_shared();
        let op = DistOp::new(a.clone(), 4, Arc::clone(&stats));
        assert!(!op.split().all_interior());
        let x = DMat::from_fn(64, 5, |i, j| ((i * 3 + j) % 11) as f64 - 5.0);
        let y = op.apply_new(&x);
        // Bit-identical to the unsplit SpMM.
        let y_plain = a.apply(&x);
        for i in 0..64 {
            for j in 0..5 {
                assert_eq!(y[(i, j)].to_bits(), y_plain[(i, j)].to_bits());
            }
        }
        let snap = stats.snapshot();
        // Total flops unchanged; interior portion flagged overlappable.
        assert_eq!(snap.flops as usize, 2 * a.nnz() * 5);
        assert_eq!(snap.overlap_flops as usize, 2 * op.split().interior_nnz * 5);
        assert!(snap.overlap_flops > 0 && snap.overlap_flops < snap.flops);
        // Single rank: no halo, nothing to overlap.
        let stats1 = CommStats::new_shared();
        let op1 = DistOp::new(a, 1, Arc::clone(&stats1));
        assert!(op1.split().all_interior());
        let _ = op1.apply_new(&x);
        assert_eq!(stats1.snapshot().overlap_flops, 0);
    }

    #[test]
    fn projected_op_annihilates_c_components() {
        let a = laplace1d(30);
        // C = first 2 canonical directions, orthonormal.
        let mut c = DMat::<f64>::zeros(30, 2);
        c[(0, 0)] = 1.0;
        c[(5, 1)] = 1.0;
        let stats = CommStats::default();
        let op = ProjectedOp {
            inner: &a,
            c: &c,
            stats: Some(&stats),
        };
        let x = DMat::from_fn(30, 1, |i, _| 1.0 + i as f64);
        let y = op.apply_new(&x);
        // Cᴴ y = 0.
        let g = kryst_dense::blas::adjoint_times(&c, &y);
        assert!(g.max_abs() < 1e-12);
        assert_eq!(stats.snapshot().reductions, 1);
    }

    #[test]
    fn matrix_free_dist_op_matches_assembled() {
        let a = laplace1d(64);
        let stats = CommStats::new_shared();
        // Use a second copy of the matrix as the "matrix-free" applier: the
        // overlapped schedule must route through it and stay bit-identical.
        let mf: Arc<dyn ApplyRows<f64>> = Arc::new(a.clone());
        let op = DistOp::new(a.clone(), 4, Arc::clone(&stats)).with_matrix_free(mf);
        assert!(op.is_matrix_free());
        let x = DMat::from_fn(64, 5, |i, j| ((i * 7 + j) % 13) as f64 - 6.0);
        let y = op.apply_new(&x);
        let y_plain = a.apply(&x);
        for i in 0..64 {
            for j in 0..5 {
                assert_eq!(y[(i, j)].to_bits(), y_plain[(i, j)].to_bits());
            }
        }
        assert_eq!(op.bytes_per_apply(), a.bytes_per_apply());
    }

    #[test]
    fn precond_precision_env_and_names() {
        assert_eq!(PrecondPrecision::default(), PrecondPrecision::Full);
        assert_eq!(PrecondPrecision::Full.name(), "full");
        assert_eq!(PrecondPrecision::Single.name(), "single");
        let m = IdentityPrecond::new(3);
        assert_eq!(
            PrecondOp::<f64>::precision(&m),
            PrecondPrecision::Full,
            "default precision is full"
        );
    }

    #[test]
    fn identity_precond_copies() {
        let m = IdentityPrecond::new(5);
        let r = DMat::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let z = PrecondOp::<f64>::apply_new(&m, &r);
        assert_eq!(z, r);
        assert!(!PrecondOp::<f64>::is_variable(&m));
    }
}
