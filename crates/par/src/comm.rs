//! Instrumented communication counters.
//!
//! Every kernel that would communicate in a distributed run reports here:
//! global reductions (dot products, Gram matrices, norms — the quantity the
//! paper's §III-D analyses), point-to-point messages (halo exchanges of
//! SpMM), and local floating-point work. Counters are atomics with relaxed
//! ordering — they are statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared communication/work counters.
#[derive(Debug, Default)]
pub struct CommStats {
    reductions: AtomicU64,
    reduction_bytes: AtomicU64,
    fused_parts: AtomicU64,
    p2p_messages: AtomicU64,
    p2p_bytes: AtomicU64,
    flops: AtomicU64,
    overlap_flops: AtomicU64,
    overlapped_reductions: AtomicU64,
    overlapped_reduction_bytes: AtomicU64,
    overlapped_parts: AtomicU64,
    reduction_overlap_flops: AtomicU64,
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Number of global reductions (all-reduce operations).
    pub reductions: u64,
    /// Payload bytes reduced (per-rank contribution).
    pub reduction_bytes: u64,
    /// Logically separate products batched into the recorded reductions
    /// (a fused `[CᴴW; VᴴW; WᴴW]` reduction counts 1 reduction, 3 parts).
    pub fused_parts: u64,
    /// Point-to-point messages (summed over all ranks).
    pub p2p_messages: u64,
    /// Point-to-point payload bytes (summed over all ranks).
    pub p2p_bytes: u64,
    /// Local floating-point operations (summed over all ranks).
    pub flops: u64,
    /// Portion of `flops` overlappable with in-flight halo messages
    /// (interior SpMM work done while the exchange is on the wire).
    pub overlap_flops: u64,
    /// Global reductions issued through the split-phase
    /// (`ireduce_start`/`finish`) path: posted early and completed only
    /// after independent local work, so their latency can hide behind
    /// `reduction_overlap_flops` (the Ghysels pipelining argument).
    pub overlapped_reductions: u64,
    /// Payload bytes of the overlapped reductions.
    pub overlapped_reduction_bytes: u64,
    /// Logically separate products batched into the overlapped reductions
    /// (the "overlapped parts" of the metrics registry).
    pub overlapped_parts: u64,
    /// Portion of `flops` issued *between* an `ireduce_start` and its
    /// `finish` — local work that hides the in-flight reduction. Disjoint
    /// from `overlap_flops` (which hides halo p2p traffic).
    pub reduction_overlap_flops: u64,
}

impl CommStats {
    /// Fresh zeroed counters behind an `Arc` (the usual way to share them).
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one global reduction of `bytes` payload.
    #[inline]
    pub fn record_reduction(&self, bytes: usize) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        self.reduction_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `count` fused reductions (e.g. a batched convergence check).
    #[inline]
    pub fn record_reductions(&self, count: usize, bytes: usize) {
        self.reductions.fetch_add(count as u64, Ordering::Relaxed);
        self.reduction_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `count` *fused* reductions batching `parts` logically separate
    /// products into `bytes` total payload: one latency charge per reduction,
    /// summed bytes (§III-D's batching argument).
    #[inline]
    pub fn record_fused_reductions(&self, count: usize, parts: usize, bytes: usize) {
        self.reductions.fetch_add(count as u64, Ordering::Relaxed);
        self.fused_parts.fetch_add(parts as u64, Ordering::Relaxed);
        self.reduction_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a halo exchange: `messages` point-to-point sends moving `bytes`
    /// in total.
    #[inline]
    pub fn record_p2p(&self, messages: usize, bytes: usize) {
        self.p2p_messages
            .fetch_add(messages as u64, Ordering::Relaxed);
        self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record local floating-point work.
    #[inline]
    pub fn record_flops(&self, flops: usize) {
        self.flops.fetch_add(flops as u64, Ordering::Relaxed);
    }

    /// Record the portion of already-counted flops that can hide behind an
    /// in-flight halo exchange (interior rows of an overlapped SpMM).
    #[inline]
    pub fn record_overlap_flops(&self, flops: usize) {
        self.overlap_flops
            .fetch_add(flops as u64, Ordering::Relaxed);
    }

    /// Record one *overlapped* (split-phase) reduction batching `parts`
    /// products into `bytes` payload. The latency charge is the same as a
    /// fused reduction, but the cost model may hide it behind flops recorded
    /// via [`CommStats::record_reduction_overlap_flops`].
    #[inline]
    pub fn record_overlapped_reduction(&self, parts: usize, bytes: usize) {
        self.overlapped_reductions.fetch_add(1, Ordering::Relaxed);
        self.overlapped_parts
            .fetch_add(parts as u64, Ordering::Relaxed);
        self.overlapped_reduction_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record the portion of already-counted flops issued between an
    /// `ireduce_start` and its `finish` — work that hides the in-flight
    /// reduction's latency.
    #[inline]
    pub fn record_reduction_overlap_flops(&self, flops: usize) {
        self.reduction_overlap_flops
            .fetch_add(flops as u64, Ordering::Relaxed);
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            reductions: self.reductions.load(Ordering::Relaxed),
            reduction_bytes: self.reduction_bytes.load(Ordering::Relaxed),
            fused_parts: self.fused_parts.load(Ordering::Relaxed),
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            overlap_flops: self.overlap_flops.load(Ordering::Relaxed),
            overlapped_reductions: self.overlapped_reductions.load(Ordering::Relaxed),
            overlapped_reduction_bytes: self.overlapped_reduction_bytes.load(Ordering::Relaxed),
            overlapped_parts: self.overlapped_parts.load(Ordering::Relaxed),
            reduction_overlap_flops: self.reduction_overlap_flops.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.reductions.store(0, Ordering::Relaxed);
        self.reduction_bytes.store(0, Ordering::Relaxed);
        self.fused_parts.store(0, Ordering::Relaxed);
        self.p2p_messages.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.overlap_flops.store(0, Ordering::Relaxed);
        self.overlapped_reductions.store(0, Ordering::Relaxed);
        self.overlapped_reduction_bytes.store(0, Ordering::Relaxed);
        self.overlapped_parts.store(0, Ordering::Relaxed);
        self.reduction_overlap_flops.store(0, Ordering::Relaxed);
    }
}

impl CommSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            reductions: self.reductions - earlier.reductions,
            reduction_bytes: self.reduction_bytes - earlier.reduction_bytes,
            fused_parts: self.fused_parts - earlier.fused_parts,
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
            flops: self.flops - earlier.flops,
            overlap_flops: self.overlap_flops - earlier.overlap_flops,
            overlapped_reductions: self.overlapped_reductions - earlier.overlapped_reductions,
            overlapped_reduction_bytes: self.overlapped_reduction_bytes
                - earlier.overlapped_reduction_bytes,
            overlapped_parts: self.overlapped_parts - earlier.overlapped_parts,
            reduction_overlap_flops: self.reduction_overlap_flops - earlier.reduction_overlap_flops,
        }
    }

    /// Total global reductions, synchronous plus overlapped — the §III-D
    /// latency-event count independent of whether a reduction was pipelined.
    pub fn all_reductions(&self) -> u64 {
        self.reductions + self.overlapped_reductions
    }

    /// Convert to an observability delta. Overlapped (split-phase)
    /// reductions are *folded into* the plain reduction/bytes/parts fields:
    /// event consumers see complete communication totals; the exposed-vs-
    /// hidden split lives in the cost model, not the event stream.
    pub fn to_delta(&self) -> kryst_obs::CommDelta {
        kryst_obs::CommDelta {
            reductions: self.reductions + self.overlapped_reductions,
            reduction_bytes: self.reduction_bytes + self.overlapped_reduction_bytes,
            fused_parts: self.fused_parts + self.overlapped_parts,
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            flops: self.flops,
            overlap_flops: self.overlap_flops,
        }
    }
}

/// Interval sampler over a [`CommStats`]: each [`CommInterval::take`] returns
/// the counter change since the previous `take` (or construction) and
/// advances the mark. This is how solvers attribute exact communication
/// deltas to individual iteration events.
#[derive(Debug, Clone)]
pub struct CommInterval {
    stats: Option<Arc<CommStats>>,
    last: CommSnapshot,
}

impl CommInterval {
    /// Start an interval sampler at the counters' current values. `None`
    /// yields all-zero deltas (solvers run untracked).
    pub fn start(stats: Option<Arc<CommStats>>) -> Self {
        let last = stats.as_ref().map(|s| s.snapshot()).unwrap_or_default();
        Self { stats, last }
    }

    /// Counter change since the previous `take` (advances the mark).
    pub fn take(&mut self) -> CommSnapshot {
        match &self.stats {
            Some(s) => {
                let now = s.snapshot();
                let d = now.since(&self.last);
                self.last = now;
                d
            }
            None => CommSnapshot::default(),
        }
    }

    /// Counter change since the previous `take`, without advancing.
    pub fn peek(&self) -> CommSnapshot {
        match &self.stats {
            Some(s) => s.snapshot().since(&self.last),
            None => CommSnapshot::default(),
        }
    }

    /// Current absolute counter values.
    pub fn now(&self) -> CommSnapshot {
        self.stats
            .as_ref()
            .map(|s| s.snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = CommStats::new_shared();
        s.record_reduction(64);
        s.record_reduction(8);
        s.record_p2p(4, 4096);
        s.record_flops(1000);
        let snap = s.snapshot();
        assert_eq!(snap.reductions, 2);
        assert_eq!(snap.reduction_bytes, 72);
        assert_eq!(snap.p2p_messages, 4);
        assert_eq!(snap.flops, 1000);
        s.reset();
        assert_eq!(s.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn fused_reductions_charge_one_latency_with_summed_bytes() {
        let s = CommStats::new_shared();
        // Three products batched into ONE reduction: 1 latency charge,
        // 3 parts, summed payload.
        s.record_fused_reductions(1, 3, 24 + 40 + 16);
        s.record_overlap_flops(500);
        s.record_flops(800);
        let snap = s.snapshot();
        assert_eq!(snap.reductions, 1);
        assert_eq!(snap.fused_parts, 3);
        assert_eq!(snap.reduction_bytes, 80);
        assert_eq!(snap.flops, 800);
        assert_eq!(snap.overlap_flops, 500);
        // New fields participate in since/reset like the rest.
        let d = s.snapshot().since(&CommSnapshot::default());
        assert_eq!(d.fused_parts, 3);
        assert_eq!(d.overlap_flops, 500);
        s.reset();
        assert_eq!(s.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn overlapped_reductions_tracked_and_folded_into_delta() {
        let s = CommStats::new_shared();
        // One synchronous fused reduction and one split-phase reduction
        // hidden behind 700 flops of lagged operator work.
        s.record_fused_reductions(1, 2, 48);
        s.record_overlapped_reduction(2, 40);
        s.record_flops(1000);
        s.record_reduction_overlap_flops(700);
        let snap = s.snapshot();
        assert_eq!(snap.reductions, 1);
        assert_eq!(snap.overlapped_reductions, 1);
        assert_eq!(snap.overlapped_parts, 2);
        assert_eq!(snap.overlapped_reduction_bytes, 40);
        assert_eq!(snap.reduction_overlap_flops, 700);
        assert_eq!(snap.all_reductions(), 2);
        // Event deltas fold overlapped traffic into the plain fields so
        // downstream totals stay complete.
        let d = snap.to_delta();
        assert_eq!(d.reductions, 2);
        assert_eq!(d.reduction_bytes, 48 + 40);
        assert_eq!(d.fused_parts, 2 + 2);
        // since()/reset() cover the new fields.
        let diff = snap.since(&CommSnapshot::default());
        assert_eq!(diff, snap);
        s.reset();
        assert_eq!(s.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let s = CommStats::new_shared();
        s.record_reduction(8);
        let a = s.snapshot();
        s.record_reduction(8);
        s.record_p2p(1, 100);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reductions, 1);
        assert_eq!(d.p2p_messages, 1);
    }

    #[test]
    fn interval_take_partitions_the_counter_stream() {
        let s = CommStats::new_shared();
        let mut iv = CommInterval::start(Some(Arc::clone(&s)));
        s.record_reductions(3, 24);
        let d1 = iv.take();
        assert_eq!(d1.reductions, 3);
        s.record_reduction(8);
        s.record_p2p(2, 128);
        assert_eq!(iv.peek().reductions, 1);
        let d2 = iv.take();
        assert_eq!(d2.reductions, 1);
        assert_eq!(d2.p2p_messages, 2);
        // Deltas tile the stream: their sum is the absolute total.
        assert_eq!(d1.reductions + d2.reductions, s.snapshot().reductions);
        assert_eq!(iv.take(), CommSnapshot::default());
        // Untracked sampler yields zeros.
        let mut none = CommInterval::start(None);
        assert_eq!(none.take(), CommSnapshot::default());
    }

    #[test]
    fn shared_across_threads() {
        let s = CommStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_reduction(8);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().reductions, 8000);
    }
}
