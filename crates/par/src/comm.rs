//! Instrumented communication counters.
//!
//! Every kernel that would communicate in a distributed run reports here:
//! global reductions (dot products, Gram matrices, norms — the quantity the
//! paper's §III-D analyses), point-to-point messages (halo exchanges of
//! SpMM), and local floating-point work. Counters are atomics with relaxed
//! ordering — they are statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared communication/work counters.
#[derive(Debug, Default)]
pub struct CommStats {
    reductions: AtomicU64,
    reduction_bytes: AtomicU64,
    p2p_messages: AtomicU64,
    p2p_bytes: AtomicU64,
    flops: AtomicU64,
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Number of global reductions (all-reduce operations).
    pub reductions: u64,
    /// Payload bytes reduced (per-rank contribution).
    pub reduction_bytes: u64,
    /// Point-to-point messages (summed over all ranks).
    pub p2p_messages: u64,
    /// Point-to-point payload bytes (summed over all ranks).
    pub p2p_bytes: u64,
    /// Local floating-point operations (summed over all ranks).
    pub flops: u64,
}

impl CommStats {
    /// Fresh zeroed counters behind an `Arc` (the usual way to share them).
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one global reduction of `bytes` payload.
    #[inline]
    pub fn record_reduction(&self, bytes: usize) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        self.reduction_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `count` fused reductions (e.g. a batched convergence check).
    #[inline]
    pub fn record_reductions(&self, count: usize, bytes: usize) {
        self.reductions.fetch_add(count as u64, Ordering::Relaxed);
        self.reduction_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a halo exchange: `messages` point-to-point sends moving `bytes`
    /// in total.
    #[inline]
    pub fn record_p2p(&self, messages: usize, bytes: usize) {
        self.p2p_messages.fetch_add(messages as u64, Ordering::Relaxed);
        self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record local floating-point work.
    #[inline]
    pub fn record_flops(&self, flops: usize) {
        self.flops.fetch_add(flops as u64, Ordering::Relaxed);
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            reductions: self.reductions.load(Ordering::Relaxed),
            reduction_bytes: self.reduction_bytes.load(Ordering::Relaxed),
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.reductions.store(0, Ordering::Relaxed);
        self.reduction_bytes.store(0, Ordering::Relaxed);
        self.p2p_messages.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
    }
}

impl CommSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            reductions: self.reductions - earlier.reductions,
            reduction_bytes: self.reduction_bytes - earlier.reduction_bytes,
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
            flops: self.flops - earlier.flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = CommStats::new_shared();
        s.record_reduction(64);
        s.record_reduction(8);
        s.record_p2p(4, 4096);
        s.record_flops(1000);
        let snap = s.snapshot();
        assert_eq!(snap.reductions, 2);
        assert_eq!(snap.reduction_bytes, 72);
        assert_eq!(snap.p2p_messages, 4);
        assert_eq!(snap.flops, 1000);
        s.reset();
        assert_eq!(s.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let s = CommStats::new_shared();
        s.record_reduction(8);
        let a = s.snapshot();
        s.record_reduction(8);
        s.record_p2p(1, 100);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reductions, 1);
        assert_eq!(d.p2p_messages, 1);
    }

    #[test]
    fn shared_across_threads() {
        let s = CommStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_reduction(8);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().reductions, 8000);
    }
}
