//! A real SPMD mini-executor: ranks as threads, messages as channels.
//!
//! This is *not* on the hot path — the production kernels use the sharded
//! scoped-thread execution with counted communication. The executor exists to
//! validate that semantics: tests run the same reduction/halo pattern through
//! genuine message passing and check the results (and message counts) agree
//! with the instrumented sequential execution.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Message stages of one butterfly all-reduce on `p` ranks: `log₂ p` for a
/// power of two, `⌊log₂ p⌋ + 2` otherwise (one fold-in stage collapsing the
/// excess ranks onto the power-of-two core, the butterfly, one unfold stage).
/// This is what [`RankCtx::all_reduce_sum`] actually executes and what the
/// cost model charges per reduction — always ≤ the `2·⌈log₂ P⌉` of the
/// reduce-then-broadcast tree it replaced.
pub fn reduce_stages(p: usize) -> u32 {
    if p <= 1 {
        return 0;
    }
    let log = p.ilog2();
    if p.is_power_of_two() {
        log
    } else {
        log + 2
    }
}

/// Handle given to each rank's closure.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    /// `mesh[src][dst]` sender endpoints.
    senders: Vec<Sender<Vec<f64>>>,
    receivers: Vec<Receiver<Vec<f64>>>,
    barrier: Arc<std::sync::Barrier>,
    msg_count: Arc<AtomicU64>,
    stage_count: Cell<u64>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Point-to-point send of a payload to `dst`.
    pub fn send(&self, dst: usize, payload: Vec<f64>) {
        self.msg_count.fetch_add(1, Ordering::Relaxed);
        self.senders[dst].send(payload).expect("peer alive");
    }

    /// Blocking receive of the next payload from `src`.
    pub fn recv(&self, src: usize) -> Vec<f64> {
        self.receivers[src].recv().expect("peer alive")
    }

    /// Message stages this rank has participated in so far (each butterfly /
    /// fold round of an all-reduce counts one stage on every rank — the
    /// latency charge of the round).
    pub fn stages(&self) -> u64 {
        self.stage_count.get()
    }

    #[inline]
    fn bump_stage(&self) {
        self.stage_count.set(self.stage_count.get() + 1);
    }

    /// All-reduce (sum) of a local contribution via a recursive-doubling
    /// **butterfly**: `log₂ P` message stages when `P` is a power of two,
    /// `⌊log₂ P⌋ + 2` otherwise (see [`reduce_stages`]) — compared with the
    /// `2·⌈log₂ P⌉` stages of a reduce-then-broadcast binomial tree, the
    /// butterfly halves the critical path, and every rank ends with the sum.
    pub fn all_reduce_sum(&self, mut local: Vec<f64>) -> Vec<f64> {
        let _t = kryst_obs::profile(kryst_obs::Phase::Reduction);
        let p = self.nranks;
        if p == 1 {
            return local;
        }
        let r = self.rank;
        let pow2 = 1usize << p.ilog2();
        let extras = p - pow2;
        // Fold-in: excess ranks collapse their contribution onto the
        // power-of-two core.
        if extras > 0 {
            if r >= pow2 {
                self.send(r - pow2, local.clone());
            } else if r < extras {
                let other = self.recv(r + pow2);
                for (a, b) in local.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            self.bump_stage();
        }
        // Butterfly among the power-of-two core: exchange with `r ^ step`.
        // (Channel sends are buffered, so symmetric send-then-recv is safe.)
        let mut step = 1;
        while step < pow2 {
            if r < pow2 {
                let partner = r ^ step;
                self.send(partner, local.clone());
                let other = self.recv(partner);
                for (a, b) in local.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            self.bump_stage();
            step <<= 1;
        }
        // Unfold: hand the finished sum back to the excess ranks.
        if extras > 0 {
            if r < extras {
                self.send(r + pow2, local.clone());
            } else if r >= pow2 {
                local = self.recv(r - pow2);
            }
            self.bump_stage();
        }
        local
    }

    /// Fused all-reduce: several logically separate contributions batched
    /// into **one** butterfly — one latency charge (the stage count of a
    /// single [`RankCtx::all_reduce_sum`]) carrying the summed payload. Each
    /// part is returned reduced, in order.
    pub fn fused_all_reduce_sum(&self, parts: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut buf = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            buf.extend_from_slice(part);
        }
        let reduced = self.all_reduce_sum(buf);
        let mut out = Vec::with_capacity(parts.len());
        let mut off = 0;
        for part in parts {
            out.push(reduced[off..off + part.len()].to_vec());
            off += part.len();
        }
        out
    }

    /// Start a split-phase all-reduce: post every message of the butterfly
    /// that does **not** depend on a prior receive, then return a handle so
    /// the caller can run independent local work (the lagged SpMV +
    /// preconditioner apply of a pipelined iteration) while those messages
    /// are in flight. Complete with [`PendingReduce::finish`] (or
    /// [`RankCtx::ireduce_finish`]); the result, total message count, and
    /// stage count are identical to a synchronous
    /// [`RankCtx::all_reduce_sum`] — only the *placement* of the waiting
    /// changes.
    pub fn ireduce_start(&self, local: Vec<f64>) -> PendingReduce<'_> {
        let _t = kryst_obs::profile(kryst_obs::Phase::ReductionOverlap);
        let p = self.nranks;
        let mut sent_stage1 = false;
        if p > 1 {
            let r = self.rank;
            let pow2 = 1usize << p.ilog2();
            let extras = p - pow2;
            // Fold-in sends from the excess ranks are dependency-free.
            if extras > 0 && r >= pow2 {
                self.send(r - pow2, local.clone());
            }
            // Core ranks whose stage-1 payload does not depend on a fold-in
            // receive can post their first butterfly send immediately.
            if r < pow2 && r >= extras {
                self.send(r ^ 1, local.clone());
                sent_stage1 = true;
            }
        }
        PendingReduce {
            ctx: self,
            local,
            sent_stage1,
        }
    }

    /// Split-phase fused all-reduce: like [`RankCtx::ireduce_start`] but
    /// batching several parts into the one in-flight butterfly (the
    /// pipelined analogue of [`RankCtx::fused_all_reduce_sum`]).
    pub fn ifused_reduce_start(&self, parts: &[Vec<f64>]) -> PendingFusedReduce<'_> {
        let mut buf = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        let mut lens = Vec::with_capacity(parts.len());
        for part in parts {
            buf.extend_from_slice(part);
            lens.push(part.len());
        }
        PendingFusedReduce {
            inner: self.ireduce_start(buf),
            lens,
        }
    }

    /// Complete a split-phase all-reduce (the `ireduce_finish` half of the
    /// issue's API; equivalent to calling [`PendingReduce::finish`]).
    pub fn ireduce_finish(&self, pending: PendingReduce<'_>) -> Vec<f64> {
        pending.finish()
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// In-flight split-phase all-reduce started by [`RankCtx::ireduce_start`].
///
/// Dropping the handle without calling [`PendingReduce::finish`] would leave
/// partner ranks blocked on their receives, so finishing is not optional in
/// a multi-rank run — the handle is `#[must_use]`.
#[must_use = "an in-flight reduction must be finished or partner ranks deadlock"]
pub struct PendingReduce<'a> {
    ctx: &'a RankCtx,
    local: Vec<f64>,
    sent_stage1: bool,
}

impl PendingReduce<'_> {
    /// Complete the butterfly: receive (and where still needed, send) the
    /// remaining stages and return the fully reduced vector. Result, message
    /// count, and stage count match [`RankCtx::all_reduce_sum`] exactly.
    pub fn finish(mut self) -> Vec<f64> {
        let ctx = self.ctx;
        let _t = kryst_obs::profile(kryst_obs::Phase::ReductionOverlap);
        let p = ctx.nranks;
        if p == 1 {
            return self.local;
        }
        let r = ctx.rank;
        let pow2 = 1usize << p.ilog2();
        let extras = p - pow2;
        if extras > 0 {
            if r < extras {
                let other = ctx.recv(r + pow2);
                for (a, b) in self.local.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            ctx.bump_stage();
        }
        let mut step = 1;
        while step < pow2 {
            if r < pow2 {
                let partner = r ^ step;
                // Stage-1 sends may already be on the wire from
                // `ireduce_start`; everything else goes out now.
                if step > 1 || !self.sent_stage1 {
                    ctx.send(partner, self.local.clone());
                }
                let other = ctx.recv(partner);
                for (a, b) in self.local.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            ctx.bump_stage();
            step <<= 1;
        }
        if extras > 0 {
            if r < extras {
                ctx.send(r + pow2, self.local.clone());
            } else if r >= pow2 {
                self.local = ctx.recv(r - pow2);
            }
            ctx.bump_stage();
        }
        self.local
    }
}

/// In-flight split-phase *fused* all-reduce
/// (see [`RankCtx::ifused_reduce_start`]).
#[must_use = "an in-flight reduction must be finished or partner ranks deadlock"]
pub struct PendingFusedReduce<'a> {
    inner: PendingReduce<'a>,
    lens: Vec<usize>,
}

impl PendingFusedReduce<'_> {
    /// Complete the batched butterfly and split the payload back into its
    /// parts, in order.
    pub fn finish(self) -> Vec<Vec<f64>> {
        let reduced = self.inner.finish();
        let mut out = Vec::with_capacity(self.lens.len());
        let mut off = 0;
        for len in self.lens {
            out.push(reduced[off..off + len].to_vec());
            off += len;
        }
        out
    }
}

/// Run `f` on `nranks` threads; returns each rank's result in rank order,
/// plus the total number of point-to-point messages exchanged.
pub fn run<T: Send>(nranks: usize, f: impl Fn(&RankCtx) -> T + Sync) -> (Vec<T>, u64) {
    assert!(nranks >= 1);
    // Channel mesh: chans[src][dst].
    let mut senders: Vec<Vec<Sender<Vec<f64>>>> = Vec::with_capacity(nranks);
    let mut receivers: Vec<Vec<Option<Receiver<Vec<f64>>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for src in 0..nranks {
        let mut row = Vec::with_capacity(nranks);
        for receiver_row in receivers.iter_mut() {
            let (s, r) = channel();
            row.push(s);
            receiver_row[src] = Some(r);
        }
        senders.push(row);
    }
    let barrier = Arc::new(std::sync::Barrier::new(nranks));
    let msg_count = Arc::new(AtomicU64::new(0));

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, (sends, recvs)) in senders.into_iter().zip(receivers).enumerate() {
            let recvs: Vec<Receiver<Vec<f64>>> = recvs.into_iter().map(Option::unwrap).collect();
            let ctx = RankCtx {
                rank,
                nranks,
                senders: sends,
                receivers: recvs,
                barrier: Arc::clone(&barrier),
                msg_count: Arc::clone(&msg_count),
                stage_count: Cell::new(0),
            };
            let fref = &f;
            handles.push(scope.spawn(move || fref(&ctx)));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    let count = msg_count.load(Ordering::Relaxed);
    (results.into_iter().map(Option::unwrap).collect(), count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 7, 8, 16] {
            let (results, _msgs) = run(p, |ctx| {
                let local = vec![ctx.rank() as f64, 1.0];
                ctx.all_reduce_sum(local)
            });
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expect0, "p = {p}");
                assert_eq!(r[1], p as f64);
            }
        }
    }

    #[test]
    fn all_reduce_message_count_is_logarithmic() {
        // Butterfly: the power-of-two core exchanges pow2·log₂(pow2)
        // messages; non-power-of-two adds one fold-in + one unfold message
        // per excess rank.
        for p in [2usize, 3, 4, 7, 8, 16] {
            let (_res, msgs) = run(p, |ctx| ctx.all_reduce_sum(vec![1.0]));
            let pow2 = 1u64 << p.ilog2();
            let extras = p as u64 - pow2;
            assert_eq!(msgs, pow2 * u64::from(pow2.ilog2()) + 2 * extras, "p = {p}");
        }
    }

    #[test]
    fn all_reduce_stage_count_matches_reduce_stages() {
        // Satellite audit: the executor's *actual* stage count for
        // P ∈ {2,3,4,7,8,16} (including non-powers-of-two) must equal
        // reduce_stages(P) — the figure the cost model charges — and stay at
        // or below the 2·⌈log₂ P⌉ the old binomial tree claimed.
        for p in [2usize, 3, 4, 7, 8, 16] {
            let (stage_counts, _) = run(p, |ctx| {
                let _ = ctx.all_reduce_sum(vec![ctx.rank() as f64]);
                ctx.stages()
            });
            let expect = u64::from(reduce_stages(p));
            for (r, s) in stage_counts.iter().enumerate() {
                assert_eq!(*s, expect, "p = {p}, rank {r}");
            }
            let old_claim = 2 * u64::from((p as f64).log2().ceil() as u32);
            assert!(expect <= old_claim, "p = {p}: {expect} > {old_claim}");
        }
    }

    #[test]
    fn fused_all_reduce_costs_one_reduction() {
        // Three logically separate products (CᴴW / VᴴW / WᴴW shapes) batched
        // into one butterfly: same per-part sums as three separate
        // all-reduces, but the stage count of ONE.
        for p in [3usize, 4, 8] {
            let (results, _) = run(p, |ctx| {
                let r = ctx.rank() as f64;
                let parts = vec![vec![r, 2.0 * r], vec![1.0 + r], vec![r * r, r, 1.0]];
                let fused = ctx.fused_all_reduce_sum(&parts);
                (fused, ctx.stages())
            });
            let pf = p as f64;
            let sum_r: f64 = (0..p).map(|r| r as f64).sum();
            let sum_r2: f64 = (0..p).map(|r| (r * r) as f64).sum();
            for (fused, stages) in results {
                assert_eq!(fused.len(), 3);
                assert_eq!(fused[0], vec![sum_r, 2.0 * sum_r]);
                assert_eq!(fused[1], vec![pf + sum_r]);
                assert_eq!(fused[2], vec![sum_r2, sum_r, pf]);
                // One latency charge: a single all-reduce's worth of stages.
                assert_eq!(stages, u64::from(reduce_stages(p)), "p = {p}");
            }
        }
    }

    #[test]
    fn split_phase_reduce_matches_synchronous_result_and_stages() {
        // ireduce_start / finish must reproduce the synchronous butterfly
        // exactly — same sums on every rank, same stage count, same total
        // message count — with local work interleaved while in flight.
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            let (results, msgs) = run(p, |ctx| {
                let pending = ctx.ireduce_start(vec![ctx.rank() as f64, 1.0]);
                // Independent local work while the reduction is on the wire.
                let hidden: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
                let reduced = ctx.ireduce_finish(pending);
                (reduced, ctx.stages(), hidden)
            });
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for (reduced, stages, hidden) in &results {
                assert_eq!(reduced[0], expect0, "p = {p}");
                assert_eq!(reduced[1], p as f64, "p = {p}");
                assert_eq!(*stages, u64::from(reduce_stages(p)), "p = {p}");
                assert!(*hidden > 0.0);
            }
            // Message totals identical to the synchronous path.
            let (_, sync_msgs) = run(p, |ctx| ctx.all_reduce_sum(vec![0.0, 0.0]));
            assert_eq!(msgs, sync_msgs, "p = {p}");
        }
    }

    #[test]
    fn split_phase_fused_reduce_returns_parts_in_order() {
        for p in [2usize, 3, 8] {
            let (results, _) = run(p, |ctx| {
                let r = ctx.rank() as f64;
                let parts = vec![vec![r, 2.0 * r], vec![1.0 + r]];
                let pending = ctx.ifused_reduce_start(&parts);
                let reduced = pending.finish();
                (reduced, ctx.stages())
            });
            let pf = p as f64;
            let sum_r: f64 = (0..p).map(|r| r as f64).sum();
            for (fused, stages) in results {
                assert_eq!(fused.len(), 2);
                assert_eq!(fused[0], vec![sum_r, 2.0 * sum_r]);
                assert_eq!(fused[1], vec![pf + sum_r]);
                // Still one latency charge.
                assert_eq!(stages, u64::from(reduce_stages(p)), "p = {p}");
            }
        }
    }

    #[test]
    fn halo_style_neighbor_exchange() {
        // Each rank sends its id to both neighbors (chain), receives and sums.
        let p = 5;
        let (results, msgs) = run(p, |ctx| {
            let r = ctx.rank();
            if r > 0 {
                ctx.send(r - 1, vec![r as f64]);
            }
            if r + 1 < ctx.nranks() {
                ctx.send(r + 1, vec![r as f64]);
            }
            let mut acc = 0.0;
            if r > 0 {
                acc += ctx.recv(r - 1)[0];
            }
            if r + 1 < ctx.nranks() {
                acc += ctx.recv(r + 1)[0];
            }
            acc
        });
        // Chain message count = 2·(P−1), matches HaloPlan for tridiagonal.
        assert_eq!(msgs, 2 * (p as u64 - 1));
        assert_eq!(results[0], 1.0);
        assert_eq!(results[2], 1.0 + 3.0);
        assert_eq!(results[4], 3.0);
    }

    #[test]
    fn spmd_dot_product_matches_sequential() {
        // Distributed dot product of x·y with x_i = i, y_i = 2i over 3 ranks.
        let n = 30;
        let (results, _): (Vec<f64>, _) = run(3, |ctx| {
            let lo = ctx.rank() * 10;
            let hi = lo + 10;
            let local: f64 = (lo..hi).map(|i| (i as f64) * (2 * i) as f64).sum();
            ctx.all_reduce_sum(vec![local])[0]
        });
        let expect: f64 = (0..n).map(|i| (i as f64) * (2 * i) as f64).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }
}
