//! SPMD execution over a pluggable [`Transport`].
//!
//! Two execution modes, both driving the backend-generic collectives in
//! [`crate::collective`]:
//!
//! * **Closure mode** ([`run_spmd`]) — run the same closure on every rank and
//!   gather per-rank results, message totals, and wire counters. On the
//!   [`TransportKind::Channel`] backend ranks are scoped threads; on
//!   [`TransportKind::Socket`] ranks 1..P are *real OS processes* obtained by
//!   re-executing the current binary with `KRYST_RANK`/`KRYST_WORLD` in the
//!   environment. Worker processes re-enter the very same call site: under
//!   `cargo test` the spawning test's thread name doubles as the libtest
//!   filter (`binary <name> --exact`), and a per-thread call counter replays
//!   earlier `run_spmd` calls through the in-process backend (valid because
//!   the backends are bit-identical) until the targeted call is reached.
//! * **Primitive mode** ([`SpmdWorld`]) — a persistent world of workers
//!   executing small framed commands (all-reduce, ping-pong, halo exchange,
//!   coarse gather/scatter). This is what the microbenchmarks and the
//!   cost-model calibration drive: no re-exec per measurement, workers stay
//!   hot between timed repetitions. Binaries that want to *host* socket
//!   primitive workers must call [`maybe_primitive_worker`] first thing in
//!   `main`.
//!
//! Closure contract: `f` must consume every message addressed to it (our
//! collectives do) — the socket backend carries result/stats frames on the
//! same ordered streams as data, relying on protocol position, not tags.

use crate::collective;
use crate::transport::{
    channel_mesh, child_mesh, kill_children, spawn_world, Transport, TransportError, TransportKind,
};
use crate::{HaloPlan, Layout};
use kryst_obs::WireSnapshot;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Message stages of one butterfly all-reduce on `p` ranks: `log₂ p` for a
/// power of two, `⌊log₂ p⌋ + 2` otherwise (one fold-in stage collapsing the
/// excess ranks onto the power-of-two core, the butterfly, one unfold stage).
/// This is what [`collective::all_reduce_sum`] actually executes and what the
/// cost model charges per reduction — always ≤ the `2·⌈log₂ P⌉` of the
/// reduce-then-broadcast tree it replaced.
pub fn reduce_stages(p: usize) -> u32 {
    if p <= 1 {
        return 0;
    }
    let log = p.ilog2();
    if p.is_power_of_two() {
        log
    } else {
        log + 2
    }
}

/// Outcome of a [`run_spmd`] closure run.
#[derive(Debug, Clone)]
pub struct SpmdRun {
    /// Each rank's closure result, in rank order.
    pub results: Vec<Vec<f64>>,
    /// Total data-plane messages put on the wire across all ranks.
    pub messages: u64,
    /// Per-rank wire counters (data plane only; orchestration frames are
    /// control plane and excluded).
    pub wire: Vec<WireSnapshot>,
}

fn encode_wire(w: &WireSnapshot) -> [f64; 6] {
    [
        w.msgs_sent as f64,
        w.bytes_sent as f64,
        w.msgs_recv as f64,
        w.bytes_recv as f64,
        w.send_ns as f64,
        w.recv_ns as f64,
    ]
}

fn decode_wire(v: &[f64]) -> Option<WireSnapshot> {
    if v.len() != 6 {
        return None;
    }
    Some(WireSnapshot {
        msgs_sent: v[0] as u64,
        bytes_sent: v[1] as u64,
        msgs_recv: v[2] as u64,
        bytes_recv: v[3] as u64,
        send_ns: v[4] as u64,
        recv_ns: v[5] as u64,
    })
}

/// Per-thread-name `run_spmd` call counter. Worker processes replay the
/// spawning thread's earlier calls, so the count must be deterministic per
/// call site sequence — keying by thread name isolates concurrently running
/// libtest threads from each other.
fn bump_call_index() -> (String, u64) {
    static CALLS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    let name = std::thread::current().name().unwrap_or("main").to_string();
    let mut map = CALLS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let slot = map.entry(name.clone()).or_insert(0);
    let idx = *slot;
    *slot += 1;
    (name, idx)
}

/// Run `f` as one closure per rank over the chosen backend and gather every
/// rank's result (encoded as `Vec<f64>` so it can cross a process boundary),
/// total message count, and per-rank wire counters.
///
/// On [`TransportKind::Socket`] this spawns `nranks - 1` worker *processes*
/// by re-executing the current binary; inside a worker the same call site is
/// reached again and executes `f` against its socket endpoint instead of
/// spawning. `nranks == 1` always runs in process.
pub fn run_spmd<F>(kind: TransportKind, nranks: usize, f: F) -> Result<SpmdRun, TransportError>
where
    F: Fn(&dyn Transport) -> Result<Vec<f64>, TransportError> + Sync,
{
    assert!(nranks >= 1);
    let (thread_name, call_idx) = bump_call_index();
    if matches!(std::env::var("KRYST_SPMD_MODE"), Ok(m) if m == "worker")
        && std::env::var("KRYST_SPMD_THREAD").as_deref() == Ok(thread_name.as_str())
    {
        let target: u64 = std::env::var("KRYST_SPMD_CALL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        match call_idx.cmp(&target) {
            // Earlier calls of the spawning thread: replay in-process — the
            // backends are bit-identical, so program state evolves exactly
            // as it did in the parent.
            std::cmp::Ordering::Less => return run_channel(nranks, &f),
            std::cmp::Ordering::Equal => worker_execute(nranks, &f),
            std::cmp::Ordering::Greater => {
                // Unreachable: the targeted call exits the process.
                return Err(TransportError::Protocol {
                    detail: "worker ran past its targeted run_spmd call".into(),
                });
            }
        }
    }
    match kind {
        TransportKind::Channel => run_channel(nranks, &f),
        TransportKind::Socket if nranks == 1 => run_channel(nranks, &f),
        TransportKind::Socket => run_socket(nranks, &f, &thread_name, call_idx),
    }
}

/// Pick the error to surface from a set of per-rank outcomes: the first
/// non-`PeerClosed` error is the root cause (a `PeerClosed` is usually the
/// *echo* of some other rank's failure).
fn pick_error(errs: Vec<(usize, TransportError)>) -> Option<TransportError> {
    errs.iter()
        .find(|(_, e)| !matches!(e, TransportError::PeerClosed { .. }))
        .or_else(|| errs.first())
        .map(|(_, e)| e.clone())
}

/// Per-rank outcome of a channel run: the closure result plus the rank's
/// wire counters at exit.
type RankOutcome = (Result<Vec<f64>, TransportError>, WireSnapshot);

fn run_channel<F>(nranks: usize, f: &F) -> Result<SpmdRun, TransportError>
where
    F: Fn(&dyn Transport) -> Result<Vec<f64>, TransportError> + Sync,
{
    let mesh = channel_mesh(nranks);
    let mut outcomes: Vec<Option<RankOutcome>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for t in mesh {
            handles.push(scope.spawn(move || {
                // Fresh per-rank trace state: this thread *is* the rank.
                kryst_obs::span::reset_thread();
                let res = f(&t);
                let wire = t.wire().snapshot();
                // `t` drops here: disconnecting the endpoint is what turns a
                // panic or early return into `PeerClosed` on the peers.
                (res, wire)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            outcomes[rank] = Some(match h.join() {
                Ok(pair) => pair,
                Err(_) => (
                    Err(TransportError::RankFailed {
                        rank,
                        detail: "rank panicked".into(),
                    }),
                    WireSnapshot::default(),
                ),
            });
        }
    });
    let mut results = Vec::with_capacity(nranks);
    let mut wire = Vec::with_capacity(nranks);
    let mut errs = Vec::new();
    for (rank, slot) in outcomes.into_iter().enumerate() {
        let (res, w) = slot.expect("every rank joined");
        wire.push(w);
        match res {
            Ok(v) => results.push(v),
            Err(e) => {
                results.push(Vec::new());
                errs.push((rank, e));
            }
        }
    }
    if let Some(e) = pick_error(errs) {
        return Err(e);
    }
    let messages = wire.iter().map(|w| w.msgs_sent).sum();
    Ok(SpmdRun {
        results,
        messages,
        wire,
    })
}

/// Rank ≥ 1 of a socket closure run: join the mesh, run `f`, ship wire stats
/// and the result to rank 0 as control frames, and exit the process. Exit
/// codes: 0 success, 10 mesh bootstrap failed, 11 world-size mismatch,
/// 12 `f` returned an error.
fn worker_execute<F>(nranks: usize, f: &F) -> !
where
    F: Fn(&dyn Transport) -> Result<Vec<f64>, TransportError>,
{
    let mut t = match child_mesh() {
        Ok(t) => t,
        Err(_) => std::process::exit(10),
    };
    if t.nranks() != nranks {
        std::process::exit(11);
    }
    // Replayed earlier calls may have recorded spans on this thread; the
    // targeted call starts from clean, rank-aligned trace state.
    kryst_obs::span::reset_thread();
    let res = f(&t);
    match res {
        Ok(out) => {
            let stats = encode_wire(&t.wire().snapshot());
            let ok = t.send_ctl(0, &stats).is_ok() && t.send_ctl(0, &out).is_ok();
            t.finish(); // joins writer threads: frames are flushed before exit
            std::process::exit(if ok { 0 } else { 12 });
        }
        Err(_) => {
            t.finish();
            std::process::exit(12);
        }
    }
}

fn run_socket<F>(
    nranks: usize,
    f: &F,
    thread_name: &str,
    call_idx: u64,
) -> Result<SpmdRun, TransportError>
where
    F: Fn(&dyn Transport) -> Result<Vec<f64>, TransportError> + Sync,
{
    // Worker argv: under libtest the spawning thread's name is the test's
    // full path, which is exactly the filter that re-enters this call site;
    // a plain binary (`main` thread) just re-runs with its own arguments.
    let args: Vec<String> = if thread_name == "main" {
        std::env::args().skip(1).collect()
    } else {
        vec![
            thread_name.to_string(),
            "--exact".into(),
            "--nocapture".into(),
            "--test-threads=1".into(),
        ]
    };
    let mut extra_env = vec![
        ("KRYST_SPMD_CALL".to_string(), call_idx.to_string()),
        ("KRYST_SPMD_THREAD".to_string(), thread_name.to_string()),
    ];
    // Tracing may have been enabled at runtime (set_trace_enabled) rather
    // than via the environment; worker processes must agree, or the logical
    // clocks diverge across ranks.
    if kryst_obs::span::trace_enabled() {
        extra_env.push(("KRYST_TRACE".to_string(), "1".to_string()));
    }
    let (t, mut children) = spawn_world(nranks, "worker", None, &args, &extra_env)?;

    // Rank 0 runs on the calling thread, which may be long-lived: reset so
    // its trace state is as fresh as the workers'.
    kryst_obs::span::reset_thread();
    let r0 = f(&t);
    let r0 = match r0 {
        Ok(v) => v,
        Err(e) => {
            kill_children(&mut children);
            return Err(e);
        }
    };

    let mut results = vec![Vec::new(); nranks];
    let mut wire = vec![WireSnapshot::default(); nranks];
    results[0] = r0;
    wire[0] = t.wire().snapshot();
    for r in 1..nranks {
        let mut stats = Vec::new();
        let mut out = Vec::new();
        let got = t
            .recv_ctl(r, &mut stats)
            .and_then(|()| t.recv_ctl(r, &mut out));
        if let Err(e) = got {
            // The worker likely exited with a diagnostic code; report that
            // instead of the bare EOF.
            let status = children[r - 1].wait().ok();
            kill_children(&mut children);
            return Err(match status.and_then(|s| s.code()) {
                Some(12) => TransportError::RankFailed {
                    rank: r,
                    detail: "worker reported a transport error".into(),
                },
                Some(c) if c != 0 => TransportError::RankFailed {
                    rank: r,
                    detail: format!("worker exited with code {c}"),
                },
                _ => e,
            });
        }
        wire[r] = decode_wire(&stats).ok_or_else(|| TransportError::Protocol {
            detail: format!("malformed wire-stats frame from rank {r}"),
        })?;
        results[r] = out;
    }
    for (i, c) in children.iter_mut().enumerate() {
        match c.wait() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                return Err(TransportError::RankFailed {
                    rank: i + 1,
                    detail: format!("worker exited abnormally: {s}"),
                })
            }
            Err(e) => {
                return Err(TransportError::RankFailed {
                    rank: i + 1,
                    detail: format!("wait failed: {e}"),
                })
            }
        }
    }
    let messages = wire.iter().map(|w| w.msgs_sent).sum();
    Ok(SpmdRun {
        results,
        messages,
        wire,
    })
}

// ---------------------------------------------------------------------------
// Primitive-worker mode
// ---------------------------------------------------------------------------

/// Deterministic per-rank payload used by the primitive commands (the same
/// fill on every backend, so cross-backend results stay bit-identical).
fn pattern(rank: usize, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((rank * 31 + i) % 97) as f64 * 0.125 + 1.0)
        .collect()
}

/// If this process was spawned as a *primitive* socket worker
/// (`KRYST_SPMD_MODE=primitive`), join the mesh, serve commands until
/// shutdown, and exit — never returning to the caller. Binaries that host
/// [`SpmdWorld`] socket workers (the calibration bin, the transport bench)
/// must call this first thing in `main`.
pub fn maybe_primitive_worker() {
    if !matches!(std::env::var("KRYST_SPMD_MODE"), Ok(m) if m == "primitive") {
        return;
    }
    let code = match child_mesh() {
        Ok(mut t) => {
            let c = primitive_loop(&t);
            t.finish();
            c
        }
        Err(_) => 10,
    };
    std::process::exit(code);
}

/// Serve primitive commands on a worker endpoint until shutdown. Commands
/// arrive as control frames from rank 0: `[0]` shutdown (reply with wire
/// stats), `[1, len, reps]` all-reduce, `[2, len, reps]` ping-pong (rank 1
/// echoes), `[3, cols, reps, plan…]` halo exchange, `[4, n, subset, reps]`
/// coarse gather/scatter round-trips.
fn primitive_loop<T: Transport + ?Sized>(t: &T) -> i32 {
    let rank = t.rank();
    let p = t.nranks();
    let mut cmd = Vec::new();
    let mut scratch = Vec::new();
    loop {
        if t.recv_ctl(0, &mut cmd).is_err() || cmd.is_empty() {
            return 13;
        }
        let reps = |idx: usize| cmd.get(idx).copied().unwrap_or(1.0) as usize;
        let ok = match cmd[0] as u32 {
            0 => {
                let stats = encode_wire(&t.wire().snapshot());
                return if t.send_ctl(0, &stats).is_ok() { 0 } else { 13 };
            }
            1 => {
                let len = reps(1);
                let n = reps(2);
                (0..n).try_fold((), |(), _| {
                    let mut local = pattern(rank, len);
                    collective::all_reduce_sum(t, &mut local, &mut scratch).map(|_| ())
                })
            }
            2 => {
                // Ping-pong is a rank 0 ↔ 1 affair; everyone else idles.
                if rank == 1 {
                    let n = reps(2);
                    let mut buf = Vec::new();
                    (0..n).try_fold((), |(), _| {
                        t.recv_into(0, &mut buf)?;
                        t.send(0, &buf)
                    })
                } else {
                    Ok(())
                }
            }
            3 => {
                let cols = reps(1);
                let n = reps(2);
                match HaloPlan::decode(&cmd[3..]) {
                    Some(plan) => (0..n).try_fold((), |(), _| {
                        plan.execute(t, cols, (rank + 1) as f64).map(|_| ())
                    }),
                    None => Err(TransportError::Protocol {
                        detail: "malformed halo-plan frame".into(),
                    }),
                }
            }
            4 => {
                let coarse_n = reps(1);
                let subset = reps(2);
                let n = reps(3);
                let src = Layout::even(coarse_n, p);
                let dst = collective::subset_layout(coarse_n, p, subset);
                let local = pattern(rank, src.local_n(rank));
                let mut gathered = Vec::new();
                let mut back = Vec::new();
                (0..n).try_fold((), |(), _| {
                    collective::redistribute(t, &src, &dst, &local, &mut gathered)?;
                    collective::redistribute(t, &dst, &src, &gathered, &mut back)
                })
            }
            _ => Err(TransportError::Protocol {
                detail: format!("unknown primitive command {}", cmd[0]),
            }),
        };
        if ok.is_err() {
            return 13;
        }
    }
}

enum WorldBacking {
    Channel(Vec<std::thread::JoinHandle<i32>>),
    Socket(Vec<std::process::Child>),
}

/// A persistent world of primitive workers plus this process's rank-0
/// endpoint: the measurement substrate for the transport microbenchmarks and
/// the cost-model calibration. Channel worlds back workers with threads;
/// socket worlds spawn real worker processes (the hosting binary — or the
/// explicit `exe` — must call [`maybe_primitive_worker`] at the top of
/// `main`).
pub struct SpmdWorld {
    endpoint: Box<dyn Transport>,
    backing: WorldBacking,
    kind: TransportKind,
    nranks: usize,
}

impl SpmdWorld {
    /// Spawn a world of `nranks` over `kind`, workers re-executing the
    /// current binary in socket mode.
    pub fn spawn(kind: TransportKind, nranks: usize) -> Result<Self, TransportError> {
        Self::spawn_with_exe(kind, nranks, None)
    }

    /// Like [`SpmdWorld::spawn`] but socket workers execute `exe` instead of
    /// the current binary — how test binaries (which cannot host the
    /// pre-libtest worker hook) borrow the calibration bin as their worker.
    pub fn spawn_with_exe(
        kind: TransportKind,
        nranks: usize,
        exe: Option<&std::path::Path>,
    ) -> Result<Self, TransportError> {
        assert!(nranks >= 2, "an SpmdWorld needs at least 2 ranks");
        match kind {
            TransportKind::Channel => {
                let mut mesh = channel_mesh(nranks);
                let workers = mesh
                    .split_off(1)
                    .into_iter()
                    .map(|t| std::thread::spawn(move || primitive_loop(&t)))
                    .collect();
                let endpoint: Box<dyn Transport> = Box::new(mesh.pop().expect("rank 0 endpoint"));
                Ok(SpmdWorld {
                    endpoint,
                    backing: WorldBacking::Channel(workers),
                    kind,
                    nranks,
                })
            }
            TransportKind::Socket => {
                let (t, children) = spawn_world(nranks, "primitive", exe, &[], &[])?;
                Ok(SpmdWorld {
                    endpoint: Box::new(t),
                    backing: WorldBacking::Socket(children),
                    kind,
                    nranks,
                })
            }
        }
    }

    /// Backend this world runs on.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    fn broadcast_cmd(&self, cmd: &[f64]) -> Result<(), TransportError> {
        for r in 1..self.nranks {
            self.endpoint.send_ctl(r, cmd)?;
        }
        Ok(())
    }

    /// Time `reps` butterfly all-reduces of `len` doubles (wall time of rank
    /// 0's participation — the collective synchronizes, so this is the
    /// per-operation latency).
    pub fn all_reduce(&self, len: usize, reps: usize) -> Result<Duration, TransportError> {
        self.broadcast_cmd(&[1.0, len as f64, reps as f64])?;
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut local = pattern(0, len);
            collective::all_reduce_sum(self.endpoint.as_ref(), &mut local, &mut scratch)?;
        }
        Ok(t0.elapsed())
    }

    /// Time `reps` ping-pong round trips of `len` doubles against rank 1.
    pub fn ping_pong(&self, len: usize, reps: usize) -> Result<Duration, TransportError> {
        self.broadcast_cmd(&[2.0, len as f64, reps as f64])?;
        let payload = pattern(0, len);
        let mut buf = Vec::new();
        let t0 = Instant::now();
        for _ in 0..reps {
            self.endpoint.send(1, &payload)?;
            self.endpoint.recv_into(1, &mut buf)?;
        }
        Ok(t0.elapsed())
    }

    /// Time `reps` executions of a halo-exchange `plan` with `cols` columns
    /// per entry.
    pub fn halo(
        &self,
        plan: &HaloPlan,
        cols: usize,
        reps: usize,
    ) -> Result<Duration, TransportError> {
        let mut cmd = vec![3.0, cols as f64, reps as f64];
        cmd.extend(plan.encode());
        self.broadcast_cmd(&cmd)?;
        let t0 = Instant::now();
        for _ in 0..reps {
            plan.execute(self.endpoint.as_ref(), cols, 1.0)?;
        }
        Ok(t0.elapsed())
    }

    /// Time `reps` agglomerated-coarse round trips: gather an
    /// evenly-distributed `coarse_n`-row vector onto the first `subset`
    /// ranks, scatter it back.
    pub fn coarse(
        &self,
        coarse_n: usize,
        subset: usize,
        reps: usize,
    ) -> Result<Duration, TransportError> {
        self.broadcast_cmd(&[4.0, coarse_n as f64, subset as f64, reps as f64])?;
        let src = Layout::even(coarse_n, self.nranks);
        let dst = collective::subset_layout(coarse_n, self.nranks, subset);
        let local = pattern(0, src.local_n(0));
        let mut gathered = Vec::new();
        let mut back = Vec::new();
        let t0 = Instant::now();
        for _ in 0..reps {
            collective::redistribute(self.endpoint.as_ref(), &src, &dst, &local, &mut gathered)?;
            collective::redistribute(self.endpoint.as_ref(), &dst, &src, &gathered, &mut back)?;
        }
        Ok(t0.elapsed())
    }

    /// Rank 0's current wire counters.
    pub fn wire(&self) -> WireSnapshot {
        self.endpoint.wire().snapshot()
    }

    /// Shut the world down and collect per-rank wire counters (rank 0
    /// first).
    pub fn shutdown(self) -> Result<Vec<WireSnapshot>, TransportError> {
        self.broadcast_cmd(&[0.0])?;
        let mut wires = vec![self.endpoint.wire().snapshot()];
        let mut stats = Vec::new();
        for r in 1..self.nranks {
            self.endpoint.recv_ctl(r, &mut stats)?;
            wires.push(decode_wire(&stats).ok_or_else(|| TransportError::Protocol {
                detail: format!("malformed wire-stats frame from rank {r}"),
            })?);
        }
        drop(self.endpoint);
        match self.backing {
            WorldBacking::Channel(handles) => {
                for h in handles {
                    let _ = h.join();
                }
            }
            WorldBacking::Socket(mut children) => {
                for (i, c) in children.iter_mut().enumerate() {
                    match c.wait() {
                        Ok(s) if s.success() => {}
                        Ok(s) => {
                            return Err(TransportError::RankFailed {
                                rank: i + 1,
                                detail: format!("primitive worker exited abnormally: {s}"),
                            })
                        }
                        Err(e) => {
                            return Err(TransportError::RankFailed {
                                rank: i + 1,
                                detail: format!("wait failed: {e}"),
                            })
                        }
                    }
                }
            }
        }
        Ok(wires)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{
        all_reduce_sum, fused_all_reduce_sum, ifused_reduce_start, ireduce_start,
    };

    fn channel_run<F>(p: usize, f: F) -> SpmdRun
    where
        F: Fn(&dyn Transport) -> Result<Vec<f64>, TransportError> + Sync,
    {
        run_spmd(TransportKind::Channel, p, f).expect("channel run succeeds")
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 7, 8, 16] {
            let run = channel_run(p, |t| {
                let mut local = vec![t.rank() as f64, 1.0];
                let mut scratch = Vec::new();
                all_reduce_sum(t, &mut local, &mut scratch)?;
                Ok(local)
            });
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for r in run.results {
                assert_eq!(r[0], expect0, "p = {p}");
                assert_eq!(r[1], p as f64);
            }
        }
    }

    #[test]
    fn all_reduce_message_count_is_logarithmic() {
        // Butterfly: the power-of-two core exchanges pow2·log₂(pow2)
        // messages; non-power-of-two adds one fold-in + one unfold message
        // per excess rank.
        for p in [2usize, 3, 4, 7, 8, 16] {
            let run = channel_run(p, |t| {
                let mut local = vec![1.0];
                let mut scratch = Vec::new();
                all_reduce_sum(t, &mut local, &mut scratch)?;
                Ok(local)
            });
            let pow2 = 1u64 << p.ilog2();
            let extras = p as u64 - pow2;
            assert_eq!(
                run.messages,
                pow2 * u64::from(pow2.ilog2()) + 2 * extras,
                "p = {p}"
            );
        }
    }

    #[test]
    fn all_reduce_stage_count_matches_reduce_stages() {
        // The executed stage count for P ∈ {2,3,4,7,8,16} (including
        // non-powers-of-two) must equal reduce_stages(P) — the figure the
        // cost model charges — and stay at or below the 2·⌈log₂ P⌉ the old
        // binomial tree claimed.
        for p in [2usize, 3, 4, 7, 8, 16] {
            let run = channel_run(p, |t| {
                let mut local = vec![t.rank() as f64];
                let mut scratch = Vec::new();
                let stages = all_reduce_sum(t, &mut local, &mut scratch)?;
                Ok(vec![f64::from(stages)])
            });
            let expect = f64::from(reduce_stages(p));
            for (r, s) in run.results.iter().enumerate() {
                assert_eq!(s[0], expect, "p = {p}, rank {r}");
            }
            let old_claim = 2.0 * (p as f64).log2().ceil();
            assert!(expect <= old_claim, "p = {p}: {expect} > {old_claim}");
        }
    }

    #[test]
    fn fused_all_reduce_costs_one_reduction() {
        // Three logically separate products (CᴴW / VᴴW / WᴴW shapes) batched
        // into one butterfly: same per-part sums as three separate
        // all-reduces, but the stage count of ONE.
        for p in [3usize, 4, 8] {
            let run = channel_run(p, |t| {
                let r = t.rank() as f64;
                let parts = vec![vec![r, 2.0 * r], vec![1.0 + r], vec![r * r, r, 1.0]];
                let mut scratch = Vec::new();
                let (fused, stages) = fused_all_reduce_sum(t, &parts, &mut scratch)?;
                let mut out = vec![f64::from(stages)];
                out.extend(fused.into_iter().flatten());
                Ok(out)
            });
            let pf = p as f64;
            let sum_r: f64 = (0..p).map(|r| r as f64).sum();
            let sum_r2: f64 = (0..p).map(|r| (r * r) as f64).sum();
            for enc in run.results {
                // One latency charge: a single all-reduce's worth of stages.
                assert_eq!(enc[0], f64::from(reduce_stages(p)), "p = {p}");
                assert_eq!(
                    enc[1..],
                    [sum_r, 2.0 * sum_r, pf + sum_r, sum_r2, sum_r, pf]
                );
            }
        }
    }

    #[test]
    fn split_phase_reduce_matches_synchronous_result_and_stages() {
        // ireduce_start / finish must reproduce the synchronous butterfly
        // exactly — same sums on every rank, same stage count, same total
        // message count — with local work interleaved while in flight.
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            let run = channel_run(p, |t| {
                let pending = ireduce_start(t, vec![t.rank() as f64, 1.0])?;
                // Independent local work while the reduction is on the wire.
                let hidden: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
                let mut scratch = Vec::new();
                let (reduced, stages) = pending.finish(&mut scratch)?;
                Ok(vec![reduced[0], reduced[1], f64::from(stages), hidden])
            });
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for enc in &run.results {
                assert_eq!(enc[0], expect0, "p = {p}");
                assert_eq!(enc[1], p as f64, "p = {p}");
                assert_eq!(enc[2], f64::from(reduce_stages(p)), "p = {p}");
                assert!(enc[3] > 0.0);
            }
            // Message totals identical to the synchronous path.
            let sync = channel_run(p, |t| {
                let mut local = vec![0.0, 0.0];
                let mut scratch = Vec::new();
                all_reduce_sum(t, &mut local, &mut scratch)?;
                Ok(local)
            });
            assert_eq!(run.messages, sync.messages, "p = {p}");
        }
    }

    #[test]
    fn split_phase_fused_reduce_returns_parts_in_order() {
        for p in [2usize, 3, 8] {
            let run = channel_run(p, |t| {
                let r = t.rank() as f64;
                let parts = vec![vec![r, 2.0 * r], vec![1.0 + r]];
                let pending = ifused_reduce_start(t, &parts)?;
                let mut scratch = Vec::new();
                let (fused, stages) = pending.finish(&mut scratch)?;
                let mut out = vec![f64::from(stages)];
                out.extend(fused.into_iter().flatten());
                Ok(out)
            });
            let pf = p as f64;
            let sum_r: f64 = (0..p).map(|r| r as f64).sum();
            for enc in run.results {
                // Still one latency charge.
                assert_eq!(enc[0], f64::from(reduce_stages(p)), "p = {p}");
                assert_eq!(enc[1..], [sum_r, 2.0 * sum_r, pf + sum_r]);
            }
        }
    }

    #[test]
    fn halo_style_neighbor_exchange() {
        // Each rank sends its id to both neighbors (chain), receives and sums.
        let p = 5;
        let run = channel_run(p, |t| {
            let r = t.rank();
            if r > 0 {
                t.send(r - 1, &[r as f64])?;
            }
            if r + 1 < t.nranks() {
                t.send(r + 1, &[r as f64])?;
            }
            let mut acc = 0.0;
            if r > 0 {
                acc += t.recv(r - 1)?[0];
            }
            if r + 1 < t.nranks() {
                acc += t.recv(r + 1)?[0];
            }
            Ok(vec![acc])
        });
        // Chain message count = 2·(P−1), matches HaloPlan for tridiagonal.
        assert_eq!(run.messages, 2 * (p as u64 - 1));
        assert_eq!(run.results[0][0], 1.0);
        assert_eq!(run.results[2][0], 1.0 + 3.0);
        assert_eq!(run.results[4][0], 3.0);
    }

    #[test]
    fn spmd_dot_product_matches_sequential() {
        // Distributed dot product of x·y with x_i = i, y_i = 2i over 3 ranks.
        let n = 30;
        let run = channel_run(3, |t| {
            let lo = t.rank() * 10;
            let hi = lo + 10;
            let mut local = vec![(lo..hi).map(|i| (i as f64) * (2 * i) as f64).sum()];
            let mut scratch = Vec::new();
            all_reduce_sum(t, &mut local, &mut scratch)?;
            Ok(local)
        });
        let expect: f64 = (0..n).map(|i| (i as f64) * (2 * i) as f64).sum();
        for r in run.results {
            assert_eq!(r[0], expect);
        }
    }

    #[test]
    fn redistribute_round_trips_between_layouts() {
        let p = 4;
        let n = 23;
        let run = channel_run(p, |t| {
            let src = Layout::even(n, p);
            let dst = collective::subset_layout(n, p, 2);
            let r = t.rank();
            let local: Vec<f64> = src.range(r).map(|i| i as f64).collect();
            let mut gathered = Vec::new();
            collective::redistribute(t, &src, &dst, &local, &mut gathered)?;
            // Gathered rows must be exactly the dst range, in order.
            for (k, v) in dst.range(r).zip(&gathered) {
                assert_eq!(*v, k as f64);
            }
            let mut back = Vec::new();
            collective::redistribute(t, &dst, &src, &gathered, &mut back)?;
            assert_eq!(back, local);
            Ok(vec![gathered.len() as f64])
        });
        let dst = collective::subset_layout(n, p, 2);
        for (r, res) in run.results.iter().enumerate() {
            assert_eq!(res[0], dst.local_n(r) as f64);
        }
        // Wire totals match the static message count (both directions).
        let src = Layout::even(n, p);
        let (msgs, rows) = collective::redistribute_messages(&src, &dst);
        let (msgs_back, rows_back) = collective::redistribute_messages(&dst, &src);
        let total_msgs: u64 = run.wire.iter().map(|w| w.msgs_sent).sum();
        let total_bytes: u64 = run.wire.iter().map(|w| w.bytes_sent).sum();
        assert_eq!(total_msgs, (msgs + msgs_back) as u64);
        assert_eq!(total_bytes, 8 * (rows + rows_back) as u64);
    }

    #[test]
    fn run_spmd_surfaces_peer_death_as_typed_error() {
        // Rank 1 "dies" (returns without participating); rank 0's receive
        // must surface the typed PeerClosed, not a panic.
        let err = run_spmd(TransportKind::Channel, 2, |t| {
            if t.rank() == 1 {
                return Ok(Vec::new());
            }
            let mut local = vec![1.0];
            let mut scratch = Vec::new();
            all_reduce_sum(t, &mut local, &mut scratch)?;
            Ok(local)
        })
        .unwrap_err();
        assert_eq!(err, TransportError::PeerClosed { rank: 0, peer: 1 });
    }

    #[test]
    fn socket_all_reduce_matches_channel_bitwise() {
        // Cross-backend smoke test at P = 3 (the fold-in + unfold path):
        // identical summation order ⇒ bitwise-identical results. The heavier
        // sweep lives in tests/transport_equivalence.rs.
        let body = |t: &dyn Transport| {
            let r = t.rank() as f64;
            let mut local = vec![0.1 * r + 0.3, r * r - 0.25, 1.0 / (r + 1.0)];
            let mut scratch = Vec::new();
            all_reduce_sum(t, &mut local, &mut scratch)?;
            Ok(local)
        };
        let chan = run_spmd(TransportKind::Channel, 3, body).expect("channel run");
        let sock = run_spmd(TransportKind::Socket, 3, body).expect("socket run");
        assert_eq!(chan.results, sock.results);
        assert_eq!(chan.messages, sock.messages);
    }

    #[test]
    fn channel_spmd_world_primitives_run() {
        let world = SpmdWorld::spawn(TransportKind::Channel, 4).expect("world spawns");
        world.all_reduce(8, 3).expect("all-reduce runs");
        world.ping_pong(1, 5).expect("ping-pong runs");
        world.coarse(17, 2, 2).expect("coarse round-trip runs");
        let w = world.wire();
        assert!(w.msgs_sent > 0 && w.msgs_recv > 0);
        let wires = world.shutdown().expect("clean shutdown");
        assert_eq!(wires.len(), 4);
        // Conservation: every sent message was received by someone.
        let sent: u64 = wires.iter().map(|w| w.msgs_sent).sum();
        let recv: u64 = wires.iter().map(|w| w.msgs_recv).sum();
        assert_eq!(sent, recv);
    }
}
