//! A real SPMD mini-executor: ranks as threads, messages as channels.
//!
//! This is *not* on the hot path — the production kernels use the sharded
//! scoped-thread execution with counted communication. The executor exists to
//! validate that semantics: tests run the same reduction/halo pattern through
//! genuine message passing and check the results (and message counts) agree
//! with the instrumented sequential execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Handle given to each rank's closure.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    /// `mesh[src][dst]` sender endpoints.
    senders: Vec<Sender<Vec<f64>>>,
    receivers: Vec<Receiver<Vec<f64>>>,
    barrier: Arc<std::sync::Barrier>,
    msg_count: Arc<AtomicU64>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Point-to-point send of a payload to `dst`.
    pub fn send(&self, dst: usize, payload: Vec<f64>) {
        self.msg_count.fetch_add(1, Ordering::Relaxed);
        self.senders[dst].send(payload).expect("peer alive");
    }

    /// Blocking receive of the next payload from `src`.
    pub fn recv(&self, src: usize) -> Vec<f64> {
        self.receivers[src].recv().expect("peer alive")
    }

    /// All-reduce (sum) of a local contribution via a binomial tree rooted at
    /// rank 0 followed by a broadcast down the same tree — `2·⌈log₂ P⌉`
    /// message stages, the pattern the cost model charges for.
    pub fn all_reduce_sum(&self, mut local: Vec<f64>) -> Vec<f64> {
        let p = self.nranks;
        let r = self.rank;
        // Reduce up the tree.
        let mut step = 1;
        while step < p {
            if r % (2 * step) == step {
                // Sender this stage.
                self.send(r - step, local.clone());
            } else if r.is_multiple_of(2 * step) && r + step < p {
                let other = self.recv(r + step);
                for (a, b) in local.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            step *= 2;
        }
        // Broadcast down.
        step /= 2;
        while step >= 1 {
            if r.is_multiple_of(2 * step) && r + step < p {
                self.send(r + step, local.clone());
            } else if r % (2 * step) == step {
                local = self.recv(r - step);
            }
            if step == 1 {
                break;
            }
            step /= 2;
        }
        local
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Run `f` on `nranks` threads; returns each rank's result in rank order,
/// plus the total number of point-to-point messages exchanged.
pub fn run<T: Send>(nranks: usize, f: impl Fn(&RankCtx) -> T + Sync) -> (Vec<T>, u64) {
    assert!(nranks >= 1);
    // Channel mesh: chans[src][dst].
    let mut senders: Vec<Vec<Sender<Vec<f64>>>> = Vec::with_capacity(nranks);
    let mut receivers: Vec<Vec<Option<Receiver<Vec<f64>>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for src in 0..nranks {
        let mut row = Vec::with_capacity(nranks);
        for receiver_row in receivers.iter_mut() {
            let (s, r) = channel();
            row.push(s);
            receiver_row[src] = Some(r);
        }
        senders.push(row);
    }
    let barrier = Arc::new(std::sync::Barrier::new(nranks));
    let msg_count = Arc::new(AtomicU64::new(0));

    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, (sends, recvs)) in senders.into_iter().zip(receivers).enumerate() {
            let recvs: Vec<Receiver<Vec<f64>>> = recvs.into_iter().map(Option::unwrap).collect();
            let ctx = RankCtx {
                rank,
                nranks,
                senders: sends,
                receivers: recvs,
                barrier: Arc::clone(&barrier),
                msg_count: Arc::clone(&msg_count),
            };
            let fref = &f;
            handles.push(scope.spawn(move || fref(&ctx)));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    let count = msg_count.load(Ordering::Relaxed);
    (results.into_iter().map(Option::unwrap).collect(), count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 7, 8] {
            let (results, _msgs) = run(p, |ctx| {
                let local = vec![ctx.rank() as f64, 1.0];
                ctx.all_reduce_sum(local)
            });
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r[0], expect0, "p = {p}");
                assert_eq!(r[1], p as f64);
            }
        }
    }

    #[test]
    fn all_reduce_message_count_is_logarithmic() {
        // Power-of-two ranks: exactly 2·(P−1) messages per all-reduce
        // (P−1 up the tree, P−1 down).
        for p in [2usize, 4, 8] {
            let (_res, msgs) = run(p, |ctx| ctx.all_reduce_sum(vec![1.0]));
            assert_eq!(msgs, 2 * (p as u64 - 1), "p = {p}");
        }
    }

    #[test]
    fn halo_style_neighbor_exchange() {
        // Each rank sends its id to both neighbors (chain), receives and sums.
        let p = 5;
        let (results, msgs) = run(p, |ctx| {
            let r = ctx.rank();
            if r > 0 {
                ctx.send(r - 1, vec![r as f64]);
            }
            if r + 1 < ctx.nranks() {
                ctx.send(r + 1, vec![r as f64]);
            }
            let mut acc = 0.0;
            if r > 0 {
                acc += ctx.recv(r - 1)[0];
            }
            if r + 1 < ctx.nranks() {
                acc += ctx.recv(r + 1)[0];
            }
            acc
        });
        // Chain message count = 2·(P−1), matches HaloPlan for tridiagonal.
        assert_eq!(msgs, 2 * (p as u64 - 1));
        assert_eq!(results[0], 1.0);
        assert_eq!(results[2], 1.0 + 3.0);
        assert_eq!(results[4], 3.0);
    }

    #[test]
    fn spmd_dot_product_matches_sequential() {
        // Distributed dot product of x·y with x_i = i, y_i = 2i over 3 ranks.
        let n = 30;
        let (results, _): (Vec<f64>, _) = run(3, |ctx| {
            let lo = ctx.rank() * 10;
            let hi = lo + 10;
            let local: f64 = (lo..hi).map(|i| (i as f64) * (2 * i) as f64).sum();
            ctx.all_reduce_sum(vec![local])[0]
        });
        let expect: f64 = (0..n).map(|i| (i as f64) * (2 * i) as f64).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }
}
