//! Collectives generic over a [`Transport`].
//!
//! The butterfly all-reduce, its fused and split-phase variants, the layout
//! redistribution used by the agglomerated coarse solve, and a barrier — all
//! written once against the [`Transport`] trait so the identical algorithm
//! (and therefore the identical floating-point summation order) runs over
//! in-process channels and over sockets between real OS processes. Bitwise
//! cross-backend equivalence is asserted by `tests/transport_equivalence.rs`.
//!
//! Buffer discipline (the redundant-clone fix): sends borrow the local
//! buffer (`&[f64]`), receives land in one caller-provided scratch buffer
//! reused across stages, and the unfold receive overwrites the local buffer
//! in place — no per-stage payload clones anywhere on the butterfly.

use crate::spmd::reduce_stages;
use crate::trace::{edge_begin, edge_end, OpenEdge, SPLIT_PHASE_BIT};
use crate::transport::{Transport, TransportError};
use crate::Layout;
use kryst_obs::span::TraceKind;

/// All-reduce (sum) in place via the recursive-doubling **butterfly**:
/// `log₂ P` message stages when `P` is a power of two, `⌊log₂ P⌋ + 2`
/// otherwise ([`reduce_stages`]) — the same schedule on every backend.
/// `scratch` receives partner payloads and is reused across stages (and
/// across calls, if the caller keeps it). Returns the stage count executed.
pub fn all_reduce_sum<T: Transport + ?Sized>(
    t: &T,
    local: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) -> Result<u32, TransportError> {
    let _t = kryst_obs::profile(kryst_obs::Phase::Reduction);
    // One trace hook covers the plain, fused, and barrier flavors — they all
    // funnel through this butterfly.
    let trace = edge_begin(t, TraceKind::Reduction);
    let p = t.nranks();
    if p == 1 {
        edge_end(t, trace, 0);
        return Ok(0);
    }
    let r = t.rank();
    let pow2 = 1usize << p.ilog2();
    let extras = p - pow2;
    let mut stages = 0u32;
    // Fold-in: excess ranks collapse their contribution onto the
    // power-of-two core.
    if extras > 0 {
        if r >= pow2 {
            t.send(r - pow2, local)?;
        } else if r < extras {
            t.recv_into(r + pow2, scratch)?;
            accumulate(local, scratch)?;
        }
        stages += 1;
    }
    // Butterfly among the power-of-two core: exchange with `r ^ step`.
    // (Sends are buffered on every backend — channel sends enqueue, socket
    // sends hand the frame to a writer thread — so the symmetric
    // send-then-recv is deadlock-free.)
    let mut step = 1;
    while step < pow2 {
        if r < pow2 {
            let partner = r ^ step;
            t.send(partner, local)?;
            t.recv_into(partner, scratch)?;
            accumulate(local, scratch)?;
        }
        stages += 1;
        step <<= 1;
    }
    // Unfold: hand the finished sum back to the excess ranks. The receive
    // overwrites `local` directly — the dead buffer is reused, not cloned.
    if extras > 0 {
        if r < extras {
            t.send(r + pow2, local)?;
        } else if r >= pow2 {
            t.recv_into(r - pow2, local)?;
        }
        stages += 1;
    }
    edge_end(t, trace, u64::from(stages));
    Ok(stages)
}

/// Fused all-reduce: several logically separate contributions batched into
/// **one** butterfly — one latency charge carrying the summed payload. Each
/// part is returned reduced, in order, with the stage count of a single
/// [`all_reduce_sum`].
pub fn fused_all_reduce_sum<T: Transport + ?Sized>(
    t: &T,
    parts: &[Vec<f64>],
    scratch: &mut Vec<f64>,
) -> Result<(Vec<Vec<f64>>, u32), TransportError> {
    let mut buf = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        buf.extend_from_slice(part);
    }
    let stages = all_reduce_sum(t, &mut buf, scratch)?;
    let mut out = Vec::with_capacity(parts.len());
    let mut off = 0;
    for part in parts {
        out.push(buf[off..off + part.len()].to_vec());
        off += part.len();
    }
    Ok((out, stages))
}

/// Synchronize all ranks (an empty-payload butterfly — no dedicated barrier
/// machinery, so the schedule is identical on every backend).
pub fn barrier<T: Transport + ?Sized>(t: &T) -> Result<(), TransportError> {
    let mut empty = Vec::new();
    let mut scratch = Vec::new();
    all_reduce_sum(t, &mut empty, &mut scratch)?;
    Ok(())
}

/// Start a split-phase all-reduce: post every butterfly message that does
/// **not** depend on a prior receive, then return a handle so the caller can
/// run independent local work (the lagged SpMV + preconditioner apply of a
/// pipelined iteration) while those messages are in flight. Complete with
/// [`PendingReduce::finish`]; result, message count, and stage count are
/// identical to a synchronous [`all_reduce_sum`] — only the *placement* of
/// the waiting changes.
pub fn ireduce_start<'a, T: Transport + ?Sized>(
    t: &'a T,
    local: Vec<f64>,
) -> Result<PendingReduce<'a, T>, TransportError> {
    let _t = kryst_obs::profile(kryst_obs::Phase::ReductionOverlap);
    // The span opens here and closes in `finish`, so its wall footprint is
    // the whole in-flight window — the overlap the skew analysis decomposes.
    let trace = edge_begin(t, TraceKind::Reduction);
    let p = t.nranks();
    let mut sent_stage1 = false;
    if p > 1 {
        let r = t.rank();
        let pow2 = 1usize << p.ilog2();
        let extras = p - pow2;
        // Fold-in sends from the excess ranks are dependency-free.
        if extras > 0 && r >= pow2 {
            t.send(r - pow2, &local)?;
        }
        // Core ranks whose stage-1 payload does not depend on a fold-in
        // receive can post their first butterfly send immediately.
        if r < pow2 && r >= extras {
            t.send(r ^ 1, &local)?;
            sent_stage1 = true;
        }
    }
    Ok(PendingReduce {
        t,
        local,
        sent_stage1,
        trace,
    })
}

/// Split-phase fused all-reduce: like [`ireduce_start`] but batching several
/// parts into the one in-flight butterfly.
pub fn ifused_reduce_start<'a, T: Transport + ?Sized>(
    t: &'a T,
    parts: &[Vec<f64>],
) -> Result<PendingFusedReduce<'a, T>, TransportError> {
    let mut buf = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    let mut lens = Vec::with_capacity(parts.len());
    for part in parts {
        buf.extend_from_slice(part);
        lens.push(part.len());
    }
    Ok(PendingFusedReduce {
        inner: ireduce_start(t, buf)?,
        lens,
    })
}

/// In-flight split-phase all-reduce started by [`ireduce_start`].
///
/// Dropping the handle without calling [`PendingReduce::finish`] would leave
/// partner ranks blocked on their receives, so finishing is not optional in
/// a multi-rank run — the handle is `#[must_use]`.
#[must_use = "an in-flight reduction must be finished or partner ranks deadlock"]
pub struct PendingReduce<'a, T: Transport + ?Sized> {
    t: &'a T,
    local: Vec<f64>,
    sent_stage1: bool,
    trace: OpenEdge,
}

impl<T: Transport + ?Sized> PendingReduce<'_, T> {
    /// Complete the butterfly: receive (and where still needed, send) the
    /// remaining stages and return the fully reduced vector plus the total
    /// stage count of the whole operation. Result, message count, and stage
    /// count match [`all_reduce_sum`] exactly.
    pub fn finish(mut self, scratch: &mut Vec<f64>) -> Result<(Vec<f64>, u32), TransportError> {
        let t = self.t;
        let _g = kryst_obs::profile(kryst_obs::Phase::ReductionOverlap);
        let p = t.nranks();
        if p == 1 {
            edge_end(t, self.trace.take(), SPLIT_PHASE_BIT);
            return Ok((self.local, 0));
        }
        let r = t.rank();
        let pow2 = 1usize << p.ilog2();
        let extras = p - pow2;
        let mut stages = 0u32;
        if extras > 0 {
            if r < extras {
                t.recv_into(r + pow2, scratch)?;
                accumulate(&mut self.local, scratch)?;
            }
            stages += 1;
        }
        let mut step = 1;
        while step < pow2 {
            if r < pow2 {
                let partner = r ^ step;
                // Stage-1 sends may already be on the wire from
                // `ireduce_start`; everything else goes out now.
                if step > 1 || !self.sent_stage1 {
                    t.send(partner, &self.local)?;
                }
                t.recv_into(partner, scratch)?;
                accumulate(&mut self.local, scratch)?;
            }
            stages += 1;
            step <<= 1;
        }
        if extras > 0 {
            if r < extras {
                t.send(r + pow2, &self.local)?;
            } else if r >= pow2 {
                t.recv_into(r - pow2, &mut self.local)?;
            }
            stages += 1;
        }
        debug_assert_eq!(stages, reduce_stages(p));
        edge_end(t, self.trace.take(), u64::from(stages) | SPLIT_PHASE_BIT);
        Ok((self.local, stages))
    }
}

/// In-flight split-phase *fused* all-reduce (see [`ifused_reduce_start`]).
#[must_use = "an in-flight reduction must be finished or partner ranks deadlock"]
pub struct PendingFusedReduce<'a, T: Transport + ?Sized> {
    inner: PendingReduce<'a, T>,
    lens: Vec<usize>,
}

impl<T: Transport + ?Sized> PendingFusedReduce<'_, T> {
    /// Complete the batched butterfly and split the payload back into its
    /// parts, in order, plus the stage count.
    pub fn finish(self, scratch: &mut Vec<f64>) -> Result<(Vec<Vec<f64>>, u32), TransportError> {
        let (reduced, stages) = self.inner.finish(scratch)?;
        let mut out = Vec::with_capacity(self.lens.len());
        let mut off = 0;
        for len in self.lens {
            out.push(reduced[off..off + len].to_vec());
            off += len;
        }
        Ok((out, stages))
    }
}

/// Move block-row data from the `src` distribution to the `dst` distribution
/// over the transport's point-to-point path. Rows whose owner does not
/// change are copied locally (no message) — the same accounting the modeled
/// `CoarseAgglom` gather/scatter uses, so measured wire counters and modeled
/// message/byte counts coincide. `local` holds this rank's `src` rows;
/// `out` is resized to this rank's `dst` row count.
///
/// Both layouts must span the transport's world (ranks beyond a subset
/// simply own zero rows).
pub fn redistribute<T: Transport + ?Sized>(
    t: &T,
    src: &Layout,
    dst: &Layout,
    local: &[f64],
    out: &mut Vec<f64>,
) -> Result<(), TransportError> {
    let p = t.nranks();
    let r = t.rank();
    if src.nranks() != p || dst.nranks() != p || src.n() != dst.n() {
        return Err(TransportError::Protocol {
            detail: format!(
                "redistribute: layouts ({} / {} ranks, {} / {} rows) do not match world of {p}",
                src.nranks(),
                dst.nranks(),
                src.n(),
                dst.n()
            ),
        });
    }
    if local.len() != src.local_n(r) {
        return Err(TransportError::Protocol {
            detail: format!(
                "redistribute: rank {r} holds {} rows, src layout owns {}",
                local.len(),
                src.local_n(r)
            ),
        });
    }
    let trace = edge_begin(t, TraceKind::Redistribute);
    let my_src = src.range(r);
    let my_dst = dst.range(r);
    out.clear();
    out.resize(dst.local_n(r), 0.0);
    // Post all sends first: with buffered sends on every backend this cannot
    // deadlock, and receives can then drain in any rank order.
    for d in 0..p {
        let ov = overlap(&my_src, &dst.range(d));
        if ov.is_empty() {
            continue;
        }
        let slice = &local[ov.start - my_src.start..ov.end - my_src.start];
        if d == r {
            out[ov.start - my_dst.start..ov.end - my_dst.start].copy_from_slice(slice);
        } else {
            t.send(d, slice)?;
        }
    }
    let mut scratch = Vec::new();
    for s in 0..p {
        if s == r {
            continue;
        }
        let ov = overlap(&src.range(s), &my_dst);
        if ov.is_empty() {
            continue;
        }
        t.recv_into(s, &mut scratch)?;
        if scratch.len() != ov.len() {
            return Err(TransportError::Protocol {
                detail: format!(
                    "redistribute: rank {r} expected {} rows from {s}, got {}",
                    ov.len(),
                    scratch.len()
                ),
            });
        }
        out[ov.start - my_dst.start..ov.end - my_dst.start].copy_from_slice(&scratch);
    }
    edge_end(t, trace, out.len() as u64);
    Ok(())
}

/// Messages a [`redistribute`] between `src` and `dst` puts on the wire
/// (rows staying on their owner are free) — the check-sum the equivalence
/// tests compare against measured wire counters.
pub fn redistribute_messages(src: &Layout, dst: &Layout) -> (usize, usize) {
    let mut msgs = 0;
    let mut rows = 0;
    for s in 0..src.nranks() {
        for d in 0..dst.nranks() {
            if s == d {
                continue;
            }
            let ov = overlap(&src.range(s), &dst.range(d));
            if !ov.is_empty() {
                msgs += 1;
                rows += ov.len();
            }
        }
    }
    (msgs, rows)
}

/// Layout distributing `n` rows evenly over the first `subset` ranks of an
/// `nranks`-rank world (the remaining ranks own zero rows) — the destination
/// distribution of the agglomerated coarse solve's gather.
pub fn subset_layout(n: usize, nranks: usize, subset: usize) -> Layout {
    assert!(subset >= 1 && subset <= nranks);
    let inner = Layout::even(n, subset);
    let counts: Vec<usize> = (0..nranks)
        .map(|r| if r < subset { inner.local_n(r) } else { 0 })
        .collect();
    Layout::from_counts(&counts)
}

fn overlap(a: &std::ops::Range<usize>, b: &std::ops::Range<usize>) -> std::ops::Range<usize> {
    a.start.max(b.start)..a.end.min(b.end).max(a.start.max(b.start))
}

fn accumulate(local: &mut [f64], other: &[f64]) -> Result<(), TransportError> {
    if local.len() != other.len() {
        return Err(TransportError::Protocol {
            detail: format!(
                "payload length mismatch in reduction: {} vs {}",
                local.len(),
                other.len()
            ),
        });
    }
    for (a, b) in local.iter_mut().zip(other) {
        *a += *b;
    }
    Ok(())
}
