//! Contiguous row distributions over ranks.

/// A block-row distribution of `0..n` over `nranks` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    offsets: Vec<usize>,
}

impl Layout {
    /// Even block distribution (first `n % nranks` ranks get one extra row).
    pub fn even(n: usize, nranks: usize) -> Self {
        assert!(nranks >= 1);
        let base = n / nranks;
        let extra = n % nranks;
        let mut offsets = Vec::with_capacity(nranks + 1);
        let mut acc = 0;
        offsets.push(0);
        for r in 0..nranks {
            acc += base + usize::from(r < extra);
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Build from explicit per-rank row counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Global problem size.
    pub fn n(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Row range owned by rank `r`.
    pub fn range(&self, r: usize) -> std::ops::Range<usize> {
        self.offsets[r]..self.offsets[r + 1]
    }

    /// Number of rows owned by rank `r`.
    pub fn local_n(&self, r: usize) -> usize {
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Owning rank of global row `i` (binary search).
    pub fn rank_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n());
        match self.offsets.binary_search(&i) {
            Ok(r) if r == self.nranks() => r - 1,
            Ok(r) => r,
            Err(r) => r - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_covers() {
        let l = Layout::even(10, 3);
        assert_eq!(l.nranks(), 3);
        assert_eq!(l.n(), 10);
        assert_eq!(l.range(0), 0..4);
        assert_eq!(l.range(1), 4..7);
        assert_eq!(l.range(2), 7..10);
        let total: usize = (0..3).map(|r| l.local_n(r)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn rank_of_matches_ranges() {
        let l = Layout::even(100, 7);
        for i in 0..100 {
            let r = l.rank_of(i);
            assert!(l.range(r).contains(&i), "row {i} → rank {r}");
        }
    }

    #[test]
    fn from_counts() {
        let l = Layout::from_counts(&[3, 0, 5]);
        assert_eq!(l.range(1), 3..3);
        assert_eq!(l.range(2), 3..8);
        assert_eq!(l.rank_of(3), 2);
    }

    #[test]
    fn more_ranks_than_rows() {
        let l = Layout::even(2, 4);
        assert_eq!(l.local_n(0), 1);
        assert_eq!(l.local_n(1), 1);
        assert_eq!(l.local_n(2), 0);
        assert_eq!(l.local_n(3), 0);
    }
}
