//! The [`Scalar`] trait: the element type of all matrices and vectors.

use crate::{Complex, Real};
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field element used by every kernel in the workspace.
///
/// Implemented for `f32`, `f64` (real problems: Poisson, elasticity) and
/// [`Complex<f32>`], [`Complex<f64>`] (time-harmonic Maxwell).
///
/// The convention throughout the workspace is the *mathematician's* inner
/// product: `dot(x, y) = Σ conj(xᵢ) yᵢ`, so `conj` below is what kernels call
/// on the left operand.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// The associated real type (`f64` for both `f64` and `Complex<f64>`).
    type Real: Real;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Complex conjugate (identity for real types).
    fn conj(self) -> Self;
    /// Real part.
    fn re(self) -> Self::Real;
    /// Imaginary part (zero for real types).
    fn im(self) -> Self::Real;
    /// Modulus.
    fn abs(self) -> Self::Real;
    /// Squared modulus (`re² + im²`; avoids the square root).
    fn abs_sqr(self) -> Self::Real;
    /// Principal square root.
    fn sqrt(self) -> Self;
    /// Embed a real value.
    fn from_real(r: Self::Real) -> Self;
    /// Embed an `f64` constant.
    fn from_f64(v: f64) -> Self;
    /// Build from real and imaginary `f64` parts (imaginary ignored for real types).
    fn from_parts(re: f64, im: f64) -> Self;
    /// True if finite.
    fn is_finite(self) -> bool;
    /// True when the type carries an imaginary component.
    fn is_complex() -> bool;
    /// Number of real words per scalar (1 or 2) — used by the communication
    /// cost model to convert element counts into bytes.
    fn real_words() -> usize {
        if Self::is_complex() {
            2
        } else {
            1
        }
    }
}

macro_rules! impl_scalar_real {
    ($t:ty) => {
        impl Scalar for $t {
            type Real = $t;

            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn conj(self) -> Self {
                self
            }
            #[inline(always)]
            fn re(self) -> Self::Real {
                self
            }
            #[inline(always)]
            fn im(self) -> Self::Real {
                0.0
            }
            #[inline(always)]
            fn abs(self) -> Self::Real {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn abs_sqr(self) -> Self::Real {
                self * self
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn from_real(r: Self::Real) -> Self {
                r
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn from_parts(re: f64, _im: f64) -> Self {
                re as $t
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn is_complex() -> bool {
                false
            }
        }
    };
}

impl_scalar_real!(f32);
impl_scalar_real!(f64);

impl<T: Real> Scalar for Complex<T> {
    type Real = T;

    #[inline(always)]
    fn zero() -> Self {
        Complex::zero()
    }
    #[inline(always)]
    fn one() -> Self {
        Complex::one()
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline(always)]
    fn re(self) -> T {
        self.re
    }
    #[inline(always)]
    fn im(self) -> T {
        self.im
    }
    #[inline(always)]
    fn abs(self) -> T {
        Complex::abs(self)
    }
    #[inline(always)]
    fn abs_sqr(self) -> T {
        Complex::norm_sqr(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        Complex::sqrt(self)
    }
    #[inline(always)]
    fn from_real(r: T) -> Self {
        Complex::new(r, T::zero())
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        Complex::new(T::from_f64(v), T::zero())
    }
    #[inline(always)]
    fn from_parts(re: f64, im: f64) -> Self {
        Complex::new(T::from_f64(re), T::from_f64(im))
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        Complex::is_finite(self)
    }
    #[inline(always)]
    fn is_complex() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn generic_roundtrip<S: Scalar>() {
        let x = S::from_f64(2.0);
        assert_eq!(x.re().to_f64(), 2.0);
        assert_eq!((x * x).re().to_f64(), 4.0);
        assert_eq!(S::zero() + S::one(), S::one());
        assert!(x.is_finite());
        let n = x.abs_sqr();
        assert_eq!(n.to_f64(), 4.0);
    }

    #[test]
    fn scalar_impls_agree() {
        generic_roundtrip::<f32>();
        generic_roundtrip::<f64>();
        generic_roundtrip::<C64>();
    }

    #[test]
    fn complex_scalar_conjugation() {
        let z = C64::from_parts(1.0, 2.0);
        assert_eq!(z.conj(), C64::from_parts(1.0, -2.0));
        // conj(z) * z = |z|² (real)
        let p = z.conj() * z;
        assert!((p.re() - 5.0).abs() < 1e-14);
        assert!(p.im().abs() < 1e-14);
    }

    #[test]
    fn real_words() {
        assert_eq!(<f64 as Scalar>::real_words(), 1);
        assert_eq!(<C64 as Scalar>::real_words(), 2);
    }
}
