//! Real-number abstraction underlying [`crate::Scalar`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point type (`f32` or `f64`).
///
/// This is the type of norms, residuals, and convergence tolerances. It is
/// deliberately minimal: only the operations actually used by the dense and
/// sparse kernels are required.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from `f64` (used for literal constants in algorithms).
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64` (used for reporting and cost models).
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `max` that propagates the larger value (NaN-unsafe inputs are a bug upstream).
    fn max(self, other: Self) -> Self;
    /// `min` counterpart of [`Real::max`].
    fn min(self, other: Self) -> Self;
    /// Machine epsilon.
    fn epsilon() -> Self;
    /// Largest finite value.
    fn max_value() -> Self;
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// `self.hypot(other)` — robust `sqrt(a² + b²)`.
    fn hypot(self, other: Self) -> Self;
    /// Natural powi.
    fn powi(self, n: i32) -> Self;
    /// Cosine (used by Chebyshev smoother bound estimation and test problems).
    fn cos(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Exponential (used by workload RHS generators).
    fn exp(self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline(always)]
            fn max_value() -> Self {
                <$t>::MAX
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);
