//! A minimal complex-number type.
//!
//! `num-complex` is not in the approved offline crate list, so the workspace
//! carries its own implementation. Only the operations needed by the dense
//! and sparse kernels are provided; the layout is `repr(C)` so a slice of
//! `Complex<f64>` can be reinterpreted as interleaved re/im pairs if needed.

use crate::Real;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Cartesian complex number over a [`Real`] component type.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: Real> Complex<T> {
    /// Create a complex number from real and imaginary parts.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::zero(), T::zero())
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::one(), T::zero())
    }

    /// The imaginary unit `i`.
    #[inline(always)]
    pub fn i() -> Self {
        Self::new(T::zero(), T::one())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z|`, computed robustly with `hypot`.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (no square root).
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Multiplicative inverse `1/z` using Smith's algorithm for robustness.
    #[inline]
    pub fn recip(self) -> Self {
        // Smith's algorithm avoids overflow/underflow of the naive formula.
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Self::new(T::one() / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Self::new(r / d, -T::one() / d)
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        if m == T::zero() {
            return Self::zero();
        }
        let two = T::from_f64(2.0);
        let re = ((m + self.re) / two).sqrt();
        let im_mag = ((m - self.re) / two).sqrt();
        let im = if self.im >= T::zero() {
            im_mag
        } else {
            -im_mag
        };
        Self::new(re, im)
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// True if both components are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via Smith-style reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<T: Real> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: Real> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re.to_f64(), self.im.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Complex<f64>;

    #[test]
    fn arithmetic_identities() {
        let z = C::new(3.0, -4.0);
        assert_eq!(z + C::zero(), z);
        assert_eq!(z * C::one(), z);
        assert_eq!(z - z, C::zero());
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = C::new(1.0, 2.0);
        let b = C::new(3.0, -1.0);
        let p = a * b; // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(p, C::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C::new(-2.5, 7.0);
        let b = C::new(0.3, -0.9);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn recip_of_tiny_and_huge_values_is_robust() {
        let tiny = C::new(1e-300, 1e-300);
        let r = tiny.recip();
        assert!(r.is_finite());
        assert!((tiny * r - C::one()).abs() < 1e-12);

        let huge = C::new(1e300, -1e300);
        let r = huge.recip();
        assert!(r.is_finite());
        assert!((huge * r - C::one()).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-5.0, 12.0),
        ] {
            let z = C::new(re, im);
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-12, "sqrt({z:?})² = {:?}", s * s);
            // Principal branch: non-negative real part.
            assert!(s.re >= 0.0);
        }
    }

    #[test]
    fn conj_properties() {
        let a = C::new(1.5, -2.5);
        let b = C::new(-0.5, 4.0);
        assert_eq!((a * b).conj(), a.conj() * b.conj());
        assert_eq!((a + b).conj(), a.conj() + b.conj());
        assert_eq!(a.conj().conj(), a);
    }
}
