#![warn(missing_docs)]
//! Scalar abstraction for the `kryst` workspace.
//!
//! Every solver, preconditioner, and kernel in the workspace is generic over a
//! [`Scalar`] type, so the same GCRO-DR code runs on real Poisson/elasticity
//! systems (`f64`) and on the complex time-harmonic Maxwell systems
//! (`Complex<f64>`) from the paper's §V.
//!
//! The crate provides its own [`Complex`] type (the offline crate list does
//! not include `num-complex`) together with the [`Real`] and [`Scalar`]
//! traits.

mod complex;
mod convert;
mod real;
mod scalar;

pub use complex::Complex;
pub use convert::{Demote, Promote};
pub use real::Real;
pub use scalar::Scalar;

/// Complex number with `f64` components — the scalar type used by the Maxwell
/// experiments (§V of the paper).
pub type C64 = Complex<f64>;
/// Complex number with `f32` components.
pub type C32 = Complex<f32>;
