//! Precision conversion between the `f64`-family and `f32`-family scalars.
//!
//! Memory-bandwidth-bound kernels (SpMV, triangular sweeps, V-cycles) are
//! limited by bytes moved, not flops; storing preconditioner data in the
//! low-precision partner type halves its value traffic while the outer
//! iteration keeps full-precision arithmetic. The [`Demote`]/[`Promote`]
//! pair is the plumbing: factors are *stored* as `S::Lo` and *promoted on
//! the fly* back to `S` inside the sweep, so every accumulation still runs
//! in the working precision.

use crate::{Complex, Scalar, C32, C64};

/// Widening conversion into the high-precision partner type.
///
/// Implemented by the low-precision family (`f32 → f64`, `C32 → C64`). The
/// conversion is exact: every `f32` is representable as an `f64`.
pub trait Promote: Scalar {
    /// The high-precision counterpart (`f64` for `f32`, `C64` for `C32`).
    type Hi: Scalar + Demote<Lo = Self>;
    /// Lossless widening into [`Promote::Hi`].
    fn promote(self) -> Self::Hi;
}

/// Narrowing conversion to the type's low-precision partner.
///
/// Implemented by *every* scalar so generic kernels can always name
/// `S::Lo`: the high-precision types narrow to their `f32`-component
/// partner (`f64 → f32`, `C64 → C32`, [`Demote::LOSSY`] = `true`), the
/// low-precision types are their own partner (identity, `LOSSY` = `false`).
pub trait Demote: Scalar {
    /// The low-precision partner (`f32` for `f64`/`f32`, `C32` for
    /// `C64`/`C32`).
    type Lo: Scalar;
    /// `true` when [`Demote::demote`] rounds (i.e. `Lo` is narrower than
    /// `Self`); `false` when the conversion is the identity.
    const LOSSY: bool;
    /// Round to the low-precision partner.
    fn demote(self) -> Self::Lo;
    /// Widen a low-precision value back to `Self` (exact).
    fn promote_lo(lo: Self::Lo) -> Self;
}

impl Promote for f32 {
    type Hi = f64;
    #[inline(always)]
    fn promote(self) -> f64 {
        self as f64
    }
}

impl Promote for C32 {
    type Hi = C64;
    #[inline(always)]
    fn promote(self) -> C64 {
        Complex::new(self.re as f64, self.im as f64)
    }
}

impl Demote for f64 {
    type Lo = f32;
    const LOSSY: bool = true;
    #[inline(always)]
    fn demote(self) -> f32 {
        self as f32
    }
    #[inline(always)]
    fn promote_lo(lo: f32) -> f64 {
        lo as f64
    }
}

impl Demote for f32 {
    type Lo = f32;
    const LOSSY: bool = false;
    #[inline(always)]
    fn demote(self) -> f32 {
        self
    }
    #[inline(always)]
    fn promote_lo(lo: f32) -> f32 {
        lo
    }
}

impl Demote for C64 {
    type Lo = C32;
    const LOSSY: bool = true;
    #[inline(always)]
    fn demote(self) -> C32 {
        Complex::new(self.re as f32, self.im as f32)
    }
    #[inline(always)]
    fn promote_lo(lo: C32) -> C64 {
        Complex::new(lo.re as f64, lo.im as f64)
    }
}

impl Demote for C32 {
    type Lo = C32;
    const LOSSY: bool = false;
    #[inline(always)]
    fn demote(self) -> C32 {
        self
    }
    #[inline(always)]
    fn promote_lo(lo: C32) -> C32 {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_is_exact_round_trip() {
        for &v in &[0.0f32, 1.5, -3.25e-20, 7.1e20, f32::MIN_POSITIVE] {
            assert_eq!(v.promote().demote(), v);
        }
        let z = C32::from_parts(1.5, -2.25);
        assert_eq!(z.promote().demote(), z);
    }

    #[test]
    fn demote_rounds_to_nearest_f32() {
        let x = 1.0f64 + 1e-12; // below f32 resolution at 1.0
        assert_eq!(x.demote(), 1.0f32);
        let y: f64 = f64::promote_lo(x.demote());
        assert!((y - x).abs() < 1e-7);
    }

    #[test]
    fn lossless_partners_are_identity() {
        const { assert!(!<f32 as Demote>::LOSSY) };
        const { assert!(!<C32 as Demote>::LOSSY) };
        const { assert!(<f64 as Demote>::LOSSY) };
        const { assert!(<C64 as Demote>::LOSSY) };
        assert_eq!(2.5f32.demote(), 2.5f32);
    }

    #[test]
    fn complex_demotes_componentwise() {
        let z = C64::from_parts(1.0 + 1e-12, -2.0);
        let lo = z.demote();
        assert_eq!(lo.re, 1.0f32);
        assert_eq!(lo.im, -2.0f32);
        let back = C64::promote_lo(lo);
        assert!((back - z).abs() < 1e-7);
    }

    fn generic_store_low<S: Demote>(vals: &[S]) -> Vec<S> {
        // The kernel idiom: store demoted, promote on the fly.
        let stored: Vec<S::Lo> = vals.iter().map(|&v| v.demote()).collect();
        stored.into_iter().map(S::promote_lo).collect()
    }

    #[test]
    fn generic_kernel_idiom_compiles_for_all_scalars() {
        let r = generic_store_low(&[1.0f64, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
        let c = generic_store_low(&[C64::from_parts(1.0, -1.0)]);
        assert_eq!(c[0], C64::from_parts(1.0, -1.0));
    }
}
