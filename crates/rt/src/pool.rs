//! Persistent worker pool.
//!
//! The kernels in `kryst-dense` / `kryst-sparse` sit on the per-iteration
//! hot path of every solver, and each of them used to pay a full
//! `std::thread::scope` spawn + join per call. This module replaces that
//! with a process-wide pool of parked worker threads, created lazily on the
//! first parallel dispatch and kept alive for the lifetime of the process:
//! waking a parked thread through a condvar costs on the order of a few
//! microseconds, versus tens of microseconds for an OS thread spawn.
//!
//! Execution model:
//!
//! * A **job** is a `Sync` closure `f(part)` over `nparts` part indices.
//!   Parts are claimed dynamically through an atomic counter, so workers
//!   that finish early steal remaining parts instead of idling.
//! * The dispatching thread participates: it claims parts like any worker
//!   and then blocks until every part has completed, which makes it sound
//!   to let the job closure borrow the dispatcher's stack (scoped-thread
//!   semantics without the spawn).
//! * Exactly one job is in flight at a time. A dispatch that finds the pool
//!   busy — a concurrent dispatch from another thread, or a *nested*
//!   dispatch from inside a running job — simply runs its parts serially
//!   inline. This keeps the pool deadlock-free by construction.
//! * A panic inside a part is caught on the worker, recorded, and re-thrown
//!   on the dispatching thread after the job drains; the worker itself
//!   returns to its parked loop, so the pool survives panicking jobs.
//! * `KRYST_THREADS=1` (or a single-core machine) spawns no workers at all:
//!   every dispatch runs serially on the calling thread, byte-for-byte
//!   deterministic.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::par::max_threads;

/// Lifetime-erased pointer to the job closure. The dispatcher blocks until
/// every part has run before returning, so the pointee outlives all uses.
#[derive(Copy, Clone)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the closure behind the pointer is `Sync`, and the dispatch
// protocol guarantees it stays alive while any worker can reach it.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One in-flight job: the closure, the part counter, and completion state.
struct Job {
    task: TaskPtr,
    nparts: usize,
    /// Next part index to claim (may run past `nparts`; claims are bounded).
    next: AtomicUsize,
    /// Parts not yet finished + the first captured panic payload.
    done: Mutex<JobDone>,
    done_cv: Condvar,
}

struct JobDone {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Worker-visible dispatch slot: a generation counter plus the current job.
struct Gate {
    epoch: u64,
    job: Option<Arc<Job>>,
}

struct Shared {
    gate: Mutex<Gate>,
    work_cv: Condvar,
}

/// The process-wide pool.
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes dispatches; `try_lock` failure falls back to inline serial.
    dispatch: Mutex<()>,
    workers: usize,
}

thread_local! {
    /// Set on pool worker threads so nested dispatches run inline.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

impl Pool {
    fn new() -> Self {
        let workers = max_threads().saturating_sub(1);
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate {
                epoch: 0,
                job: None,
            }),
            work_cv: Condvar::new(),
        });
        for w in 0..workers {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("kryst-pool-{w}"))
                .spawn(move || worker_loop(sh))
                .expect("spawn kryst pool worker");
        }
        Self {
            shared,
            dispatch: Mutex::new(()),
            workers,
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    IS_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut gate = sh.gate.lock().unwrap();
            loop {
                if gate.epoch != seen {
                    seen = gate.epoch;
                    if let Some(job) = gate.job.clone() {
                        break job;
                    }
                }
                gate = sh.work_cv.wait(gate).unwrap();
            }
        };
        work_on(&job);
    }
}

/// Claim and run parts of `job` until the counter is exhausted.
fn work_on(job: &Job) {
    loop {
        let part = job.next.fetch_add(1, Ordering::Relaxed);
        if part >= job.nparts {
            return;
        }
        // SAFETY: the dispatcher keeps the closure alive until
        // `remaining == 0`, which cannot happen before this part finishes.
        let task = unsafe { &*job.task.0 };
        let result = catch_unwind(AssertUnwindSafe(|| task(part)));
        let mut done = job.done.lock().unwrap();
        if let Err(payload) = result {
            if done.panic.is_none() {
                done.panic = Some(payload);
            }
        }
        done.remaining -= 1;
        if done.remaining == 0 {
            job.done_cv.notify_all();
        }
    }
}

fn run_serial(nparts: usize, f: &(dyn Fn(usize) + Sync)) {
    for part in 0..nparts {
        f(part);
    }
}

/// Run `f(0), f(1), …, f(nparts-1)` on the pool, blocking until all parts
/// complete. The closure may borrow the caller's stack (the call does not
/// return while any part is running). Runs serially inline when the pool is
/// unavailable: single-thread cap, nested dispatch, or a concurrent job.
///
/// If any part panics, the panic is re-thrown here after the job drains;
/// the pool remains usable afterwards.
pub fn run_parts<F: Fn(usize) + Sync>(nparts: usize, f: F) {
    if nparts == 0 {
        return;
    }
    let fr: &(dyn Fn(usize) + Sync) = &f;
    if nparts == 1 || max_threads() <= 1 || IS_WORKER.with(|w| w.get()) {
        run_serial(nparts, fr);
        return;
    }
    let pool = global();
    if pool.workers == 0 {
        run_serial(nparts, fr);
        return;
    }
    let Ok(_dispatch) = pool.dispatch.try_lock() else {
        run_serial(nparts, fr);
        return;
    };
    // SAFETY: erases the closure's lifetime; this frame outlives the job
    // (we wait on `remaining == 0` below and clear the slot before return).
    let task = TaskPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(fr)
    });
    let job = Arc::new(Job {
        task,
        nparts,
        next: AtomicUsize::new(0),
        done: Mutex::new(JobDone {
            remaining: nparts,
            panic: None,
        }),
        done_cv: Condvar::new(),
    });
    {
        let mut gate = pool.shared.gate.lock().unwrap();
        gate.epoch = gate.epoch.wrapping_add(1);
        gate.job = Some(Arc::clone(&job));
        pool.shared.work_cv.notify_all();
    }
    // The dispatcher pulls parts too — it never just waits while work exists.
    work_on(&job);
    let payload = {
        let mut done = job.done.lock().unwrap();
        while done.remaining > 0 {
            done = job.done_cv.wait(done).unwrap();
        }
        done.panic.take()
    };
    // Drop the slot so the lifetime-erased pointer can never be observed
    // after this frame returns.
    pool.shared.gate.lock().unwrap().job = None;
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Number of helper threads the pool would use (0 when serial-only). The
/// dispatching thread always participates on top of this.
pub fn pool_workers() -> usize {
    if max_threads() <= 1 {
        0
    } else {
        global().workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_parts_run_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        run_parts(97, |p| {
            hits[p].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "part {i}");
        }
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_parts(8, |p| {
                if p == 3 {
                    panic!("boom in part 3");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the dispatcher");
        // The pool keeps serving jobs afterwards.
        let sum = AtomicU64::new(0);
        run_parts(16, |p| {
            sum.fetch_add(p as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..16).sum::<u64>());
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let total = AtomicU64::new(0);
        run_parts(4, |_outer| {
            run_parts(4, |inner| {
                total.fetch_add(inner as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn concurrent_dispatches_from_plain_threads_complete() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let sum = AtomicU64::new(0);
                    for _ in 0..50 {
                        run_parts(8, |p| {
                            sum.fetch_add(p as u64, Ordering::Relaxed);
                        });
                    }
                    assert_eq!(sum.load(Ordering::Relaxed), 50 * (0..8).sum::<u64>());
                });
            }
        });
    }
}
