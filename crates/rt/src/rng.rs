//! Deterministic SplitMix64 generator.
//!
//! Seeded test data and benchmark inputs must be reproducible across runs
//! and platforms (the golden-trace tests pin their right-hand sides to a
//! seed), so the workspace uses one tiny fixed algorithm rather than an
//! external crate: SplitMix64 (Steele, Lea & Flood), which passes BigCrush
//! for this purpose and needs four lines of code.

/// A 64-bit SplitMix64 PRNG stream.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Deterministic stream from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 (from the public-domain C code).
        let mut r = Rng64::seed_from_u64(1234567);
        let v = r.next_u64();
        let mut r2 = Rng64::seed_from_u64(1234567);
        assert_eq!(v, r2.next_u64());
        assert_ne!(v, r2.next_u64());
    }

    #[test]
    fn uniform_range_bounds_and_coverage() {
        let mut r = Rng64::seed_from_u64(7);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            if v < -1.5 {
                lo_seen = true;
            }
            if v > 2.5 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen, "range ends should both be reachable");
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
