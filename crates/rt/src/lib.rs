#![warn(missing_docs)]
//! `kryst-rt` — runtime support for the kryst workspace.
//!
//! The build environment is fully offline (no crates-io registry), so the
//! workspace carries its own minimal replacements for the two external
//! crates the kernels used to lean on:
//!
//! * [`par`] — data-parallel helpers over `std::thread::scope`, covering the
//!   shapes the kernels need (indexed chunked mutation, parallel map);
//! * [`rng`] — a deterministic SplitMix64 generator for seeded test data
//!   and benchmark inputs.

pub mod par;
pub mod rng;
