#![warn(missing_docs)]
//! `kryst-rt` — runtime support for the kryst workspace.
//!
//! The build environment is fully offline (no crates-io registry), so the
//! workspace carries its own minimal replacements for the two external
//! crates the kernels used to lean on:
//!
//! * [`par`] — data-parallel helpers covering the shapes the kernels need
//!   (indexed chunked mutation, contiguous range splitting, parallel map),
//!   dispatching onto [`pool`];
//! * [`pool`] — a lazily-initialized persistent worker pool (parked threads,
//!   condvar/atomic job handoff) replacing per-call `std::thread::scope`
//!   spawn/join on every kernel invocation;
//! * [`rng`] — a deterministic SplitMix64 generator for seeded test data
//!   and benchmark inputs.

pub mod par;
pub mod pool;
pub mod rng;
