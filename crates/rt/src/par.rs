//! Data parallelism over the persistent worker pool.
//!
//! The kernels only ever need three shapes: "mutate disjoint chunks of a
//! slice in parallel", "map an index range / vector in parallel, collecting
//! in order", and "run a closure over disjoint contiguous index ranges".
//! All of them are provided here with static contiguous partitioning over
//! [`crate::pool`] — parked persistent workers instead of per-call thread
//! spawn/join, no work stealing across calls, no allocation beyond the
//! output vector. Threads are capped by [`max_threads`] (the machine's
//! available parallelism, overridable with `KRYST_THREADS`; `1` is fully
//! serial and deterministic).

use crate::pool;
use std::sync::OnceLock;

/// Upper bound on worker threads: `KRYST_THREADS` if set and nonzero,
/// otherwise `std::thread::available_parallelism()`.
pub fn max_threads() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        if let Ok(v) = std::env::var("KRYST_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn effective(threads: usize) -> usize {
    if threads == 0 {
        max_threads()
    } else {
        threads.min(max_threads())
    }
}

/// Raw-pointer wrapper that asserts cross-thread use is sound.
///
/// The parallel helpers partition an output buffer into *disjoint* element
/// ranges and hand each range to one pool part; the pointer itself is what
/// crosses the thread boundary. Safe Rust cannot express "disjoint strided
/// sub-views of one allocation", so kernels that write column-major output
/// from row-partitioned work (SpMM, blocked GEMM) use this wrapper with a
/// per-call disjointness argument at the `unsafe` site.
#[derive(Copy, Clone)]
pub struct SendPtr<T>(*mut T);
// SAFETY: callers only dereference through disjoint index sets per part
// (documented at each use site), so aliased mutation cannot occur.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a raw pointer for cross-thread disjoint-range access.
    pub fn new(p: *mut T) -> Self {
        Self(p)
    }
    /// The wrapped pointer. Going through a method (not a public field)
    /// makes closures capture the whole wrapper, keeping it `Sync`.
    pub fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Apply `f(chunk_index, chunk)` to consecutive `chunk`-sized pieces of
/// `data`, in parallel. `threads == 0` uses the default cap; `threads == 1`
/// runs serially in the calling thread. The last chunk may be short.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let len = data.len();
    let nchunks = len.div_ceil(chunk);
    let t = effective(threads).min(nchunks.max(1));
    if t <= 1 || nchunks <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let per = nchunks.div_ceil(t); // chunks per part
    let nparts = nchunks.div_ceil(per);
    let base = SendPtr::new(data.as_mut_ptr());
    pool::run_parts(nparts, |part| {
        let start = part * per * chunk;
        let end = (start + per * chunk).min(len);
        // SAFETY: parts cover disjoint, contiguous element ranges of `data`,
        // and `data` outlives the dispatch (run_parts blocks until done).
        let slice = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
        for (k, c) in slice.chunks_mut(chunk).enumerate() {
            f(part * per + k, c);
        }
    });
}

/// Run `f(start, end)` over disjoint contiguous subranges covering `0..n`,
/// one part per pool slot. `threads == 0` uses the default cap. Serial (a
/// single `f(0, n)` call) when `n` or the thread cap is too small.
pub fn for_each_range<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let t = effective(threads).min(n);
    if t <= 1 {
        f(0, n);
        return;
    }
    let per = n.div_ceil(t);
    let nparts = n.div_ceil(per);
    pool::run_parts(nparts, |part| {
        let start = part * per;
        let end = (start + per).min(n);
        f(start, end);
    });
}

/// Parallel `(0..n).map(f).collect()`, preserving order.
pub fn map_range<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let t = effective(0).min(n.max(1));
    if t <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let base = SendPtr::new(out.as_mut_ptr());
    let per = n.div_ceil(t);
    let nparts = n.div_ceil(per);
    pool::run_parts(nparts, |part| {
        let start = part * per;
        let end = (start + per).min(n);
        // SAFETY: parts fill disjoint slot ranges of `out`.
        let slots = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
        for (k, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(start + k));
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel map slot filled"))
        .collect()
}

/// Parallel map over an owned vector, preserving order.
pub fn map_vec<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let t = effective(0).min(n.max(1));
    if t <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let inp = SendPtr::new(slots.as_mut_ptr());
    let outp = SendPtr::new(out.as_mut_ptr());
    let per = n.div_ceil(t);
    let nparts = n.div_ceil(per);
    pool::run_parts(nparts, |part| {
        let start = part * per;
        let end = (start + per).min(n);
        // SAFETY: parts consume/fill disjoint slot ranges of both vectors.
        let (ins, outs) = unsafe {
            (
                std::slice::from_raw_parts_mut(inp.ptr().add(start), end - start),
                std::slice::from_raw_parts_mut(outp.ptr().add(start), end - start),
            )
        };
        for (i, o) in ins.iter_mut().zip(outs.iter_mut()) {
            *o = Some(f(i.take().expect("input present")));
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel map slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_mutation_touches_every_element_once() {
        let mut v = vec![0u64; 1000];
        for_each_chunk_mut(&mut v, 7, 0, |ci, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x += (ci * 7 + k) as u64 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn chunked_mutation_serial_matches_parallel() {
        let mut a = vec![1.0f64; 257];
        let mut b = a.clone();
        let f = |ci: usize, c: &mut [f64]| {
            for x in c.iter_mut() {
                *x *= (ci + 2) as f64;
            }
        };
        for_each_chunk_mut(&mut a, 16, 1, f);
        for_each_chunk_mut(&mut b, 16, 0, f);
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        use std::sync::atomic::{AtomicU8, Ordering};
        let hits: Vec<AtomicU8> = (0..513).map(|_| AtomicU8::new(0)).collect();
        for_each_range(513, 0, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        // Serial explicit request also covers.
        let hits2: Vec<AtomicU8> = (0..64).map(|_| AtomicU8::new(0)).collect();
        for_each_range(64, 1, |s, e| {
            assert_eq!((s, e), (0, 64));
            for h in &hits2[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    #[test]
    fn map_range_preserves_order() {
        let out = map_range(100, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        assert!(map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_vec_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = map_vec(items, |i| i + 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i + 1000);
        }
    }
}
