//! Scoped-thread data parallelism.
//!
//! The kernels only ever need two shapes: "mutate disjoint chunks of a slice
//! in parallel" and "map an index range / vector in parallel, collecting in
//! order". Both are provided here over `std::thread::scope` with static
//! contiguous partitioning — no work stealing, no pool, no allocation beyond
//! the output vector. Threads are capped by [`max_threads`] (the machine's
//! available parallelism, overridable with `KRYST_THREADS`).

use std::sync::OnceLock;

/// Upper bound on worker threads: `KRYST_THREADS` if set and nonzero,
/// otherwise `std::thread::available_parallelism()`.
pub fn max_threads() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        if let Ok(v) = std::env::var("KRYST_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn effective(threads: usize) -> usize {
    if threads == 0 {
        max_threads()
    } else {
        threads.min(max_threads())
    }
}

/// Apply `f(chunk_index, chunk)` to consecutive `chunk`-sized pieces of
/// `data`, in parallel. `threads == 0` uses the default cap; `threads == 1`
/// runs serially in the calling thread. The last chunk may be short.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = data.len().div_ceil(chunk);
    let t = effective(threads).min(nchunks.max(1));
    if t <= 1 || nchunks <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let per = nchunks.div_ceil(t);
    std::thread::scope(|scope| {
        let fr = &f;
        let mut rest = data;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = (per * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let b = base;
            scope.spawn(move || {
                for (k, c) in head.chunks_mut(chunk).enumerate() {
                    fr(b + k, c);
                }
            });
            base += per;
        }
    });
}

/// Parallel `(0..n).map(f).collect()`, preserving order.
pub fn map_range<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let t = effective(0).min(n.max(1));
    if t <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(t);
    std::thread::scope(|scope| {
        let fr = &f;
        for (ti, slots) in out.chunks_mut(per).enumerate() {
            scope.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(fr(ti * per + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel map slot filled"))
        .collect()
}

/// Parallel map over an owned vector, preserving order.
pub fn map_vec<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let t = effective(0).min(n.max(1));
    if t <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let per = n.div_ceil(t);
    std::thread::scope(|scope| {
        let fr = &f;
        for (ins, outs) in slots.chunks_mut(per).zip(out.chunks_mut(per)) {
            scope.spawn(move || {
                for (i, o) in ins.iter_mut().zip(outs.iter_mut()) {
                    *o = Some(fr(i.take().expect("input present")));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel map slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_mutation_touches_every_element_once() {
        let mut v = vec![0u64; 1000];
        for_each_chunk_mut(&mut v, 7, 0, |ci, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x += (ci * 7 + k) as u64 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn chunked_mutation_serial_matches_parallel() {
        let mut a = vec![1.0f64; 257];
        let mut b = a.clone();
        let f = |ci: usize, c: &mut [f64]| {
            for x in c.iter_mut() {
                *x *= (ci + 2) as f64;
            }
        };
        for_each_chunk_mut(&mut a, 16, 1, f);
        for_each_chunk_mut(&mut b, 16, 0, f);
        assert_eq!(a, b);
    }

    #[test]
    fn map_range_preserves_order() {
        let out = map_range(100, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        assert!(map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_vec_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = map_vec(items, |i| i + 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i + 1000);
        }
    }
}
