//! Property-based tests on the core kernels and invariants.
//!
//! Self-contained harness: each property runs over a batch of pseudo-random
//! cases drawn from the workspace's [`kryst_rt::rng::Rng64`] (SplitMix64,
//! fixed seeds — failures reproduce exactly). The macro reports the failing
//! case index so a counterexample can be replayed by seeding directly.

use kryst_core::{gmres, SolveOpts};
use kryst_dense::blas::{adjoint_times, matmul, Op};
use kryst_dense::{chol, eig, lu, qr, DMat};
use kryst_par::IdentityPrecond;
use kryst_rt::rng::Rng64;
use kryst_scalar::{Scalar, C64};
use kryst_sparse::partition::{grow_overlap, partition_of_unity, partition_rcb};
use kryst_sparse::{band::BandLu, band::BandMat, order, Coo, Csr};

/// Run `body` for `cases` pseudo-random cases; panics carry the case index.
fn prop(name: &str, cases: usize, seed: u64, body: impl Fn(&mut Rng64)) {
    for case in 0..cases {
        let mut rng =
            Rng64::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property `{name}` failed at case {case} (seed {seed}): {e:?}");
        }
    }
}

/// Random well-conditioned tall matrix (diagonal boost keeps columns
/// independent).
fn tall_matrix(rng: &mut Rng64, n: usize, k: usize) -> DMat<f64> {
    let mut m = DMat::from_fn(n, k, |_, _| rng.gen_range(-5.0, 5.0));
    for j in 0..k.min(n) {
        m[(j, j)] += 10.0;
    }
    m
}

/// Random SPD sparse matrix: tridiagonal-dominant with random couplings.
fn spd_csr(rng: &mut Rng64, n: usize) -> Csr<f64> {
    let off: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1, 1.0)).collect();
    let mut c = Coo::new(n, n);
    for i in 0..n {
        let mut d = 1.0;
        if i > 0 {
            c.push(i, i - 1, -off[i]);
            c.push(i - 1, i, -off[i]);
            d += off[i];
        }
        if i + 1 < n {
            d += off[(i + 1) % n];
        }
        c.push(i, i, d + 0.5);
    }
    c.to_csr()
}

#[test]
fn cholqr_produces_orthonormal_columns() {
    prop("cholqr_orthonormal", 24, 11, |rng| {
        let m = tall_matrix(rng, 30, 4);
        let mut q = m.clone();
        let out = chol::cholqr(&mut q);
        assert_eq!(out.rank, 4);
        let g = adjoint_times(&q, &q);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-8);
            }
        }
        // V = Q·R reconstruction.
        let rec = matmul(&q, Op::None, &out.r, Op::None);
        for i in 0..30 {
            for j in 0..4 {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-8);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Rank-revealing CholQR breakdown detection (the paper's §III-A fallback):
// blocks constructed with a known numerical rank must report exactly that
// rank, and the fixed-up Q must still be orthonormal.
// ---------------------------------------------------------------------------

/// Random real `n × p` block of exact rank `r`: full-rank factor times a
/// coefficient matrix whose trailing `p − r` columns are combinations of the
/// leading ones.
fn rank_deficient_block_f64(rng: &mut Rng64, n: usize, p: usize, r: usize) -> DMat<f64> {
    let basis = tall_matrix(rng, n, r);
    let mut coeff = DMat::<f64>::zeros(r, p);
    for j in 0..r {
        coeff[(j, j)] = 1.0 + rng.gen_range(0.0, 2.0);
    }
    for j in r..p {
        for i in 0..r {
            coeff[(i, j)] = rng.gen_range(-2.0, 2.0);
        }
    }
    matmul(&basis, Op::None, &coeff, Op::None)
}

/// Complex variant of [`rank_deficient_block_f64`].
fn rank_deficient_block_c64(rng: &mut Rng64, n: usize, p: usize, r: usize) -> DMat<C64> {
    let mut basis = DMat::<C64>::from_fn(n, r, |_, _| {
        C64::from_parts(rng.gen_range(-5.0, 5.0), rng.gen_range(-5.0, 5.0))
    });
    for j in 0..r {
        basis[(j, j)] += C64::from_parts(12.0, 0.0);
    }
    let mut coeff = DMat::<C64>::zeros(r, p);
    for j in 0..r {
        coeff[(j, j)] = C64::from_parts(1.0 + rng.gen_range(0.0, 2.0), 0.0);
    }
    for j in r..p {
        for i in 0..r {
            coeff[(i, j)] = C64::from_parts(rng.gen_range(-2.0, 2.0), rng.gen_range(-2.0, 2.0));
        }
    }
    matmul(&basis, Op::None, &coeff, Op::None)
}

#[test]
fn cholqr_breakdown_reports_constructed_rank_f64() {
    prop("cholqr_breakdown_f64", 32, 23, |rng| {
        let p = 3 + rng.gen_index(3); // block width 3..=5
        let r = 1 + rng.gen_index(p - 1); // true rank 1..p (strictly deficient)
        let mut v = rank_deficient_block_f64(rng, 40, p, r);
        let out = chol::cholqr(&mut v);
        assert_eq!(
            out.rank, r,
            "width {p}, constructed rank {r}, reported {}",
            out.rank
        );
        // The fixup must still hand back an orthonormal block.
        let g = adjoint_times(&v, &v);
        for i in 0..p {
            for j in 0..p {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - e).abs() < 1e-6,
                    "Gram ({i},{j}) = {}",
                    g[(i, j)]
                );
            }
        }
    });
}

#[test]
fn cholqr_breakdown_reports_constructed_rank_c64() {
    prop("cholqr_breakdown_c64", 32, 29, |rng| {
        let p = 3 + rng.gen_index(3);
        let r = 1 + rng.gen_index(p - 1);
        let mut v = rank_deficient_block_c64(rng, 36, p, r);
        let out = chol::cholqr(&mut v);
        assert_eq!(
            out.rank, r,
            "width {p}, constructed rank {r}, reported {}",
            out.rank
        );
        let g = adjoint_times(&v, &v);
        for i in 0..p {
            for j in 0..p {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - C64::from_parts(e, 0.0)).abs() < 1e-6);
            }
        }
    });
}

#[test]
fn block_orth_surfaces_breakdown_rank_through_solver_events() {
    // End-to-end: a rank-deficient candidate block in orthogonalize_block
    // reports the same rank the construction dictates — this is the value
    // solvers forward as `IterationEvent::breakdown_rank`.
    prop("block_orth_breakdown", 16, 31, |rng| {
        let p = 4;
        let r = 1 + rng.gen_index(p - 1);
        let mut w = rank_deficient_block_f64(rng, 50, p, r);
        let v = DMat::<f64>::zeros(50, 0);
        let out = kryst_dense::gs::orthogonalize_block(
            &v,
            0,
            &mut w,
            kryst_dense::gs::OrthScheme::CholQr,
        );
        assert_eq!(out.rank, r);
    });
}

#[test]
fn householder_qr_least_squares_is_optimal() {
    prop("qr_ls_optimal", 24, 37, |rng| {
        let m = tall_matrix(rng, 20, 3);
        let b = DMat::from_fn(20, 1, |_, _| rng.gen_range(-3.0, 3.0));
        let f = qr::HouseholderQr::factor(m.clone());
        let x = f.solve_ls(&b);
        // Optimality ⟺ Aᴴ(b − A·x) = 0.
        let mut r = matmul(&m, Op::None, &x, Op::None);
        r.scale(-1.0);
        r.axpy(1.0, &b);
        let g = adjoint_times(&m, &r);
        assert!(
            g.max_abs() < 1e-9,
            "normal-equations residual {}",
            g.max_abs()
        );
    });
}

#[test]
fn dense_lu_inverts() {
    prop("lu_inverts", 24, 41, |rng| {
        let m = tall_matrix(rng, 12, 12);
        let f = lu::Lu::factor(m.clone());
        if f.is_singular() {
            return; // vanishingly unlikely with the diagonal boost
        }
        let b = DMat::from_fn(12, 2, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let x = f.solve(&b);
        let ax = matmul(&m, Op::None, &x, Op::None);
        for i in 0..12 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-7);
            }
        }
    });
}

#[test]
fn eig_residuals_small_for_random_matrices() {
    prop("eig_residuals", 24, 43, |rng| {
        let m = tall_matrix(rng, 8, 8);
        let d = eig::eig(&m);
        if !d.converged {
            return;
        }
        let mc = eig::to_complex(&m);
        let av = matmul(&mc, Op::None, &d.vectors, Op::None);
        for j in 0..8 {
            for i in 0..8 {
                let want = d.vectors[(i, j)] * d.values[j];
                assert!(
                    (av[(i, j)] - want).abs() < 1e-6 * (1.0 + d.values[j].abs()),
                    "eig residual at ({i}, {j})"
                );
            }
        }
    });
}

#[test]
fn coo_to_csr_preserves_entries() {
    prop("coo_to_csr", 24, 47, |rng| {
        let count = 1 + rng.gen_index(59);
        let mut c = Coo::new(15, 15);
        let mut dense = vec![[0.0f64; 15]; 15];
        for _ in 0..count {
            let i = rng.gen_index(15);
            let j = rng.gen_index(15);
            let v = rng.gen_range(-4.0, 4.0);
            c.push(i, j, v);
            dense[i][j] += v;
        }
        let m = c.to_csr();
        for (i, drow) in dense.iter().enumerate() {
            for (j, dv) in drow.iter().enumerate() {
                assert!((m.get(i, j) - dv).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn spmm_matches_dense_product() {
    prop("spmm_dense", 24, 53, |rng| {
        let a = spd_csr(rng, 20);
        let x = DMat::from_fn(20, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let y = a.apply(&x);
        let ad = DMat::from_fn(20, 20, |i, j| a.get(i, j));
        let yd = matmul(&ad, Op::None, &x, Op::None);
        for i in 0..20 {
            for j in 0..3 {
                assert!((y[(i, j)] - yd[(i, j)]).abs() < 1e-10);
            }
        }
    });
}

#[test]
fn rcm_is_a_permutation_and_preserves_symmetry() {
    prop("rcm_permutation", 24, 59, |rng| {
        let a = spd_csr(rng, 25);
        let perm = order::rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..25).collect::<Vec<_>>());
        let b = order::permute_sym(&a, &perm);
        assert!(b.is_pattern_symmetric());
        assert_eq!(a.nnz(), b.nnz());
    });
}

#[test]
fn band_lu_round_trips() {
    prop("band_lu", 24, 61, |rng| {
        let n = 18;
        let off: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0, 1.0)).collect();
        let mut bm = BandMat::<f64>::zeros(n, 2, 2);
        let mut dense = DMat::<f64>::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(2)..(i + 3).min(n) {
                let v = if i == j {
                    6.0 + off[i]
                } else {
                    off[(i + j) % n]
                };
                bm.set(i, j, v);
                dense[(i, j)] = v;
            }
        }
        let f = BandLu::factor(bm);
        if f.is_singular() {
            return;
        }
        let x_true: Vec<f64> = (0..n).map(|i| off[i] * 2.0 + 1.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += dense[(i, j)] * x_true[j];
            }
        }
        f.solve_one(&mut b);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-8);
        }
    });
}

#[test]
fn partition_of_unity_always_sums_to_one() {
    prop("partition_of_unity", 24, 67, |rng| {
        let seed = rng.gen_index(1000);
        let nparts = 2 + rng.gen_index(4);
        let overlap = rng.gen_index(3);
        let n = 64;
        let coords: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 7 + seed) % 8) as f64, (i / 8) as f64])
            .collect();
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i % 8 != 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
            if i >= 8 {
                c.push(i, i - 8, -1.0);
                c.push(i - 8, i, -1.0);
            }
        }
        let a = c.to_csr();
        let part = partition_rcb(&coords, nparts);
        let ov = grow_overlap(&a, &part, overlap);
        let d = partition_of_unity(n, &ov);
        let mut acc = vec![0.0; n];
        for (set, w) in ov.iter().zip(&d) {
            for (&i, &wi) in set.iter().zip(w) {
                acc[i] += wi;
            }
        }
        for v in &acc {
            assert!((v - 1.0).abs() < 1e-12);
        }
    });
}

#[test]
fn gmres_always_converges_on_random_spd() {
    prop("gmres_spd", 24, 71, |rng| {
        let a = spd_csr(rng, 30);
        let b = DMat::from_fn(30, 1, |_, _| rng.gen_range(-1.0, 1.0));
        if b.fro_norm() <= 1e-6 {
            return;
        }
        let id = IdentityPrecond::new(30);
        let mut x = DMat::zeros(30, 1);
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 30,
            max_iters: 300,
            ..Default::default()
        };
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged);
        // The reported residual must match the true one.
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        let true_rel = r.col_norm(0) / b.col_norm(0);
        assert!(true_rel <= 1e-8, "true residual {true_rel}");
    });
}

#[test]
fn gmres_history_is_monotone_within_cycles() {
    prop("gmres_monotone", 24, 73, |rng| {
        let a = spd_csr(rng, 24);
        let b = DMat::from_fn(24, 1, |_, _| rng.gen_range(-1.0, 1.0));
        if b.fro_norm() <= 1e-6 {
            return;
        }
        let id = IdentityPrecond::new(24);
        let mut x = DMat::zeros(24, 1);
        let opts = SolveOpts {
            rtol: 1e-10,
            restart: 50,
            max_iters: 200,
            ..Default::default()
        };
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        if !res.converged || res.iterations > 50 {
            return; // single-cycle property
        }
        for w in res.history.windows(2) {
            assert!(w[1][0] <= w[0][0] + 1e-12, "non-monotone GMRES residual");
        }
    });
}
