//! Property-based tests (proptest) on the core kernels and invariants.

use kryst_core::{gmres, SolveOpts};
use kryst_dense::blas::{adjoint_times, matmul, Op};
use kryst_dense::{chol, eig, lu, qr, DMat};
use kryst_par::IdentityPrecond;
use kryst_sparse::partition::{grow_overlap, partition_of_unity, partition_rcb};
use kryst_sparse::{band::BandLu, band::BandMat, order, Coo, Csr};
use proptest::prelude::*;

/// Random well-conditioned tall matrix.
fn tall_matrix(n: usize, k: usize) -> impl Strategy<Value = DMat<f64>> {
    prop::collection::vec(-5.0..5.0f64, n * k).prop_map(move |v| {
        let mut m = DMat::from_col_major(n, k, v);
        // Diagonal boost keeps the columns independent.
        for j in 0..k {
            m[(j, j)] += 10.0;
        }
        m
    })
}

/// Random SPD sparse matrix: tridiagonal-dominant with random couplings.
fn spd_csr(n: usize) -> impl Strategy<Value = Csr<f64>> {
    prop::collection::vec(0.1..1.0f64, n).prop_map(move |off| {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            let mut d = 1.0;
            if i > 0 {
                c.push(i, i - 1, -off[i]);
                c.push(i - 1, i, -off[i]);
                d += off[i];
            }
            if i + 1 < n {
                d += off[(i + 1) % n];
            }
            c.push(i, i, d + 0.5);
        }
        c.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cholqr_produces_orthonormal_columns(m in tall_matrix(30, 4)) {
        let mut q = m.clone();
        let out = chol::cholqr(&mut q);
        prop_assert_eq!(out.rank, 4);
        let g = adjoint_times(&q, &q);
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - e).abs() < 1e-8);
            }
        }
        // V = Q·R reconstruction.
        let rec = matmul(&q, Op::None, &out.r, Op::None);
        for i in 0..30 {
            for j in 0..4 {
                prop_assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn householder_qr_least_squares_is_optimal(m in tall_matrix(20, 3), v in prop::collection::vec(-3.0..3.0f64, 20)) {
        let b = DMat::from_col_major(20, 1, v);
        let f = qr::HouseholderQr::factor(m.clone());
        let x = f.solve_ls(&b);
        // Optimality ⟺ Aᴴ(b − A·x) = 0.
        let mut r = matmul(&m, Op::None, &x, Op::None);
        r.scale(-1.0);
        r.axpy(1.0, &b);
        let g = adjoint_times(&m, &r);
        prop_assert!(g.max_abs() < 1e-9, "normal-equations residual {}", g.max_abs());
    }

    #[test]
    fn dense_lu_inverts(m in tall_matrix(12, 12)) {
        let f = lu::Lu::factor(m.clone());
        prop_assume!(!f.is_singular());
        let b = DMat::from_fn(12, 2, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let x = f.solve(&b);
        let ax = matmul(&m, Op::None, &x, Op::None);
        for i in 0..12 {
            for j in 0..2 {
                prop_assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn eig_residuals_small_for_random_matrices(m in tall_matrix(8, 8)) {
        let d = eig::eig(&m);
        prop_assume!(d.converged);
        let mc = eig::to_complex(&m);
        let av = matmul(&mc, Op::None, &d.vectors, Op::None);
        for j in 0..8 {
            for i in 0..8 {
                let want = d.vectors[(i, j)] * d.values[j];
                prop_assert!(
                    (av[(i, j)] - want).abs() < 1e-6 * (1.0 + d.values[j].abs()),
                    "eig residual at ({}, {})", i, j
                );
            }
        }
    }

    #[test]
    fn coo_to_csr_preserves_entries(
        entries in prop::collection::vec((0usize..15, 0usize..15, -4.0..4.0f64), 1..60)
    ) {
        let mut c = Coo::new(15, 15);
        let mut dense = vec![[0.0f64; 15]; 15];
        for &(i, j, v) in &entries {
            c.push(i, j, v);
            dense[i][j] += v;
        }
        let m = c.to_csr();
        for i in 0..15 {
            for j in 0..15 {
                prop_assert!((m.get(i, j) - dense[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmm_matches_dense_product(a in spd_csr(20), v in prop::collection::vec(-2.0..2.0f64, 20 * 3)) {
        let x = DMat::from_col_major(20, 3, v);
        let y = a.apply(&x);
        let ad = DMat::from_fn(20, 20, |i, j| a.get(i, j));
        let yd = matmul(&ad, Op::None, &x, Op::None);
        for i in 0..20 {
            for j in 0..3 {
                prop_assert!((y[(i, j)] - yd[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rcm_is_a_permutation_and_preserves_symmetry(a in spd_csr(25)) {
        let perm = order::rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..25).collect::<Vec<_>>());
        let b = order::permute_sym(&a, &perm);
        prop_assert!(b.is_pattern_symmetric());
        prop_assert_eq!(a.nnz(), b.nnz());
    }

    #[test]
    fn band_lu_round_trips(off in prop::collection::vec(-1.0..1.0f64, 18)) {
        let n = 18;
        let mut bm = BandMat::<f64>::zeros(n, 2, 2);
        let mut dense = DMat::<f64>::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(2)..(i + 3).min(n) {
                let v = if i == j { 6.0 + off[i] } else { off[(i + j) % n] };
                bm.set(i, j, v);
                dense[(i, j)] = v;
            }
        }
        let f = BandLu::factor(bm);
        prop_assume!(!f.is_singular());
        let x_true: Vec<f64> = (0..n).map(|i| off[i] * 2.0 + 1.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += dense[(i, j)] * x_true[j];
            }
        }
        f.solve_one(&mut b);
        for i in 0..n {
            prop_assert!((b[i] - x_true[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn partition_of_unity_always_sums_to_one(
        seed in 0usize..1000, nparts in 2usize..6, overlap in 0usize..3
    ) {
        let n = 64;
        let coords: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 7 + seed) % 8) as f64, (i / 8) as f64])
            .collect();
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i % 8 != 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
            if i >= 8 {
                c.push(i, i - 8, -1.0);
                c.push(i - 8, i, -1.0);
            }
        }
        let a = c.to_csr();
        let part = partition_rcb(&coords, nparts);
        let ov = grow_overlap(&a, &part, overlap);
        let d = partition_of_unity(n, &ov);
        let mut acc = vec![0.0; n];
        for (set, w) in ov.iter().zip(&d) {
            for (&i, &wi) in set.iter().zip(w) {
                acc[i] += wi;
            }
        }
        for v in &acc {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gmres_always_converges_on_random_spd(a in spd_csr(30), v in prop::collection::vec(-1.0..1.0f64, 30)) {
        let b = DMat::from_col_major(30, 1, v);
        prop_assume!(b.fro_norm() > 1e-6);
        let id = IdentityPrecond::new(30);
        let mut x = DMat::zeros(30, 1);
        let opts = SolveOpts { rtol: 1e-9, restart: 30, max_iters: 300, ..Default::default() };
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        prop_assert!(res.converged);
        // The reported residual must match the true one.
        let mut r = a.apply(&x);
        r.axpy(-1.0, &b);
        let true_rel = r.col_norm(0) / b.col_norm(0);
        prop_assert!(true_rel <= 1e-8, "true residual {}", true_rel);
    }

    #[test]
    fn gmres_history_is_monotone_within_cycles(a in spd_csr(24), v in prop::collection::vec(-1.0..1.0f64, 24)) {
        let b = DMat::from_col_major(24, 1, v);
        prop_assume!(b.fro_norm() > 1e-6);
        let id = IdentityPrecond::new(24);
        let mut x = DMat::zeros(24, 1);
        let opts = SolveOpts { rtol: 1e-10, restart: 50, max_iters: 200, ..Default::default() };
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        prop_assume!(res.converged && res.iterations <= 50); // single cycle
        for w in res.history.windows(2) {
            prop_assert!(w[1][0] <= w[0][0] + 1e-12, "non-monotone GMRES residual");
        }
    }
}
