//! Property suite: the blocked (multi-RHS) preconditioner apply paths must
//! be **bit-identical** to the per-column reference path, for every
//! preconditioner, scalar type, block width, and thread count.
//!
//! The blocked paths stream all `p` columns per row/level/sweep and may run
//! rows of an ILU level (or Schwarz subdomains, or AMG setup products) on
//! the worker pool — but each output element is produced by the *same*
//! floating-point operations in the *same* order as the scalar reference,
//! so equality here is exact, not approximate. Run in CI under both
//! `KRYST_THREADS=1` and `KRYST_THREADS=4`.

use kryst_dense::DMat;
use kryst_par::PrecondOp;
use kryst_pde::poisson::poisson2d;
use kryst_precond::{
    Amg, AmgOpts, Chebyshev, Ilu0, Jacobi, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind,
};
use kryst_scalar::{Scalar, C64};
use kryst_sparse::partition::partition_rcb;

const WIDTHS: [usize; 3] = [1, 4, 8];

fn pinned_rhs<S: Scalar>(n: usize, p: usize) -> DMat<S> {
    DMat::from_fn(n, p, |i, j| {
        S::from_parts(
            (((i * 7 + j * 13) % 19) as f64) - 9.0,
            (((i * 3 + j * 5) % 11) as f64) - 5.0,
        )
    })
}

/// Per-column reference: apply `m` to each column separately (`p = 1`).
fn apply_columnwise<S: Scalar>(m: &dyn PrecondOp<S>, r: &DMat<S>) -> DMat<S> {
    let n = r.nrows();
    let p = r.ncols();
    let mut z = DMat::zeros(n, p);
    for j in 0..p {
        let rj = DMat::from_col_major(n, 1, r.col(j).to_vec());
        let mut zj = DMat::zeros(n, 1);
        m.apply(&rj, &mut zj);
        z.col_mut(j).copy_from_slice(zj.col(0));
    }
    z
}

fn assert_identical<S: Scalar>(blocked: &DMat<S>, reference: &DMat<S>, what: &str) {
    assert_eq!(blocked.nrows(), reference.nrows());
    assert_eq!(blocked.ncols(), reference.ncols());
    for j in 0..blocked.ncols() {
        for i in 0..blocked.nrows() {
            let (a, b) = (blocked[(i, j)], reference[(i, j)]);
            assert!(
                a == b,
                "{what}: ({i},{j}) blocked={a:?} reference={b:?} differ"
            );
        }
    }
}

/// Blocked apply vs per-column reference, exact equality, all widths.
fn check_blocked_matches_columnwise<S: Scalar>(m: &dyn PrecondOp<S>, what: &str) {
    let n = m.nrows();
    for p in WIDTHS {
        let r = pinned_rhs::<S>(n, p);
        let mut z = DMat::zeros(n, p);
        // Apply twice: the second apply runs against a warm workspace pool,
        // so pooled-buffer reuse must not change a single bit either.
        m.apply(&r, &mut z);
        m.apply(&r, &mut z);
        let zref = apply_columnwise(m, &r);
        assert_identical(&z, &zref, &format!("{what} p={p}"));
    }
}

#[test]
fn jacobi_blocked_matches_columnwise() {
    let prob = poisson2d::<f64>(24, 18);
    check_blocked_matches_columnwise(&Jacobi::new(&prob.a, 0.8), "jacobi f64");
    let probc = poisson2d::<C64>(12, 10);
    check_blocked_matches_columnwise(&Jacobi::new(&probc.a, 0.8), "jacobi C64");
}

#[test]
fn chebyshev_blocked_matches_columnwise() {
    let prob = poisson2d::<f64>(24, 18);
    check_blocked_matches_columnwise(&Chebyshev::new(&prob.a, 3, 30.0), "chebyshev f64");
    let probc = poisson2d::<C64>(12, 10);
    check_blocked_matches_columnwise(&Chebyshev::new(&probc.a, 3, 30.0), "chebyshev C64");
}

#[test]
fn ilu_blocked_matches_columnwise() {
    // 40×20 grid: 800 rows gives forward/backward levels wider than the
    // parallel-dispatch threshold, so KRYST_THREADS=4 exercises the pooled
    // level sweep while KRYST_THREADS=1 exercises the serial one.
    let prob = poisson2d::<f64>(40, 20);
    check_blocked_matches_columnwise(&Ilu0::new(&prob.a).expect("factorizable"), "ilu0 f64");
    let probc = poisson2d::<C64>(14, 10);
    check_blocked_matches_columnwise(&Ilu0::new(&probc.a).expect("factorizable"), "ilu0 C64");
}

#[test]
fn ilu_level_sweep_matches_serial_solve_col() {
    // The level-scheduled sweep vs the plain row-by-row substitution: the
    // per-row accumulation order is shared, so even the parallel sweep is
    // bit-identical to the scalar reference.
    let prob = poisson2d::<f64>(40, 20);
    let n = prob.a.nrows();
    let ilu = Ilu0::new(&prob.a).expect("factorizable");
    for p in WIDTHS {
        let r = pinned_rhs::<f64>(n, p);
        let mut z = DMat::zeros(n, p);
        ilu.apply(&r, &mut z);
        let mut out = vec![0.0f64; n];
        for j in 0..p {
            ilu.solve_col(r.col(j), &mut out);
            for i in 0..n {
                assert_eq!(
                    z[(i, j)].to_bits(),
                    out[i].to_bits(),
                    "p={p} ({i},{j}): sweep {} vs solve_col {}",
                    z[(i, j)],
                    out[i]
                );
            }
        }
    }
}

#[test]
fn amg_blocked_matches_columnwise() {
    let prob = poisson2d::<f64>(32, 24);
    for (name, opts) in [
        ("chebyshev", AmgOpts::default()),
        (
            "jacobi",
            AmgOpts {
                smoother: SmootherKind::Jacobi {
                    omega: 0.67,
                    iters: 2,
                },
                ..Default::default()
            },
        ),
    ] {
        let amg = Amg::new(&prob.a, prob.near_nullspace.as_ref(), &opts);
        check_blocked_matches_columnwise(&amg, &format!("amg/{name} f64"));
    }
    let probc = poisson2d::<C64>(16, 12);
    let amgc = Amg::new(&probc.a, probc.near_nullspace.as_ref(), &AmgOpts::default());
    check_blocked_matches_columnwise(&amgc, "amg C64");
}

#[test]
fn schwarz_blocked_matches_columnwise() {
    let prob = poisson2d::<f64>(32, 16);
    let part = partition_rcb(&prob.coords, 8);
    for variant in [SchwarzVariant::Asm, SchwarzVariant::Ras] {
        let opts = SchwarzOpts {
            variant,
            overlap: 2,
            ..Default::default()
        };
        let sch = Schwarz::new(&prob.a, &part, &opts);
        check_blocked_matches_columnwise(&sch, &format!("schwarz/{variant:?} f64"));
    }
    let probc = poisson2d::<C64>(16, 12);
    let partc = partition_rcb(&probc.coords, 4);
    let optsc = SchwarzOpts {
        variant: SchwarzVariant::Oras,
        overlap: 1,
        ..Default::default()
    };
    let schc = Schwarz::new(&probc.a, &partc, &optsc);
    check_blocked_matches_columnwise(&schc, "schwarz/Oras C64");
}
