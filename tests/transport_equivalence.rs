//! Cross-backend transport equivalence (the tentpole invariant of the
//! transport layer): the channel mesh and the socket mesh execute the
//! *identical* collective schedule, so every reduction result — and
//! therefore every solver trace — is bit-identical whichever backend runs
//! it.
//!
//! Socket runs re-exec this test binary as worker processes (the
//! `run_spmd` worker hook keys on the libtest thread name), so each test
//! below is self-contained: no external launcher, no MPI. The persistent
//! [`SpmdWorld`] socket test instead borrows the `kryst_calibrate` binary
//! as its worker executable, since primitive workers can't pass through
//! libtest's `main`.

use kryst_core::{gcrodr, gmres, OrthPath, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::collective::{all_reduce_sum, ifused_reduce_start, ireduce_start};
use kryst_par::{
    reduce_stages, run_spmd, IdentityPrecond, SpmdRun, SpmdWorld, Transport, TransportError,
    TransportKind,
};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};

/// World sizes exercised: powers of two and the fold/unfold cases.
const WORLDS: [usize; 6] = [2, 3, 4, 7, 8, 16];

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

fn pinned_rhs(n: usize, seed: u64) -> DMat<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0))
}

/// Bit-compare two per-rank result sets.
fn assert_bits_equal(a: &SpmdRun, b: &SpmdRun, what: &str) {
    assert_eq!(a.results.len(), b.results.len(), "{what}: rank count");
    for (r, (ra, rb)) in a.results.iter().zip(&b.results).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: rank {r} result length");
        for (i, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: rank {r} element {i}: {x:e} vs {y:e}"
            );
        }
    }
}

/// Deterministic rank-dependent payload (distinct from the spmd-internal
/// `pattern`, so this test does not just replay the runtime's own data).
fn payload(rank: usize, len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((rank * 13 + i * 7 + salt) % 101) as f64 * 0.0625 - 3.0)
        .collect()
}

/// Two chained all-reduces of different lengths per rank; results must be
/// bit-identical between the channel and socket backends at every world
/// size, including the non-power-of-two fold/unfold cases.
#[test]
fn all_reduce_bit_identical_across_backends() {
    for p in WORLDS {
        let f = move |t: &dyn Transport| -> Result<Vec<f64>, TransportError> {
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            for (salt, len) in [(0usize, 33usize), (5, 8)] {
                let mut v = payload(t.rank(), len, salt);
                let stages = all_reduce_sum(t, &mut v, &mut scratch)?;
                assert_eq!(stages, reduce_stages(t.nranks()), "stage count");
                out.extend_from_slice(&v);
            }
            Ok(out)
        };
        let chan = run_spmd(TransportKind::Channel, p, f).expect("channel run");
        let sock = run_spmd(TransportKind::Socket, p, f).expect("socket run");
        assert_bits_equal(&chan, &sock, &format!("all-reduce P={p}"));
        // Same schedule ⇒ same wire message count.
        assert_eq!(chan.messages, sock.messages, "P={p}: wire message totals");
    }
}

/// Split-phase (`ireduce_start`/`finish`) and fused split-phase reductions,
/// with local work issued while the butterfly is in flight, are likewise
/// bit-identical across backends.
#[test]
fn split_phase_reduce_bit_identical_across_backends() {
    for p in [3usize, 4, 8] {
        let f = move |t: &dyn Transport| -> Result<Vec<f64>, TransportError> {
            let mut scratch = Vec::new();
            let pending = ireduce_start(t, payload(t.rank(), 21, 1))?;
            // Local work between start and finish (the latency it hides).
            let local: f64 = payload(t.rank(), 64, 2).iter().sum();
            let (mut v, _) = pending.finish(&mut scratch)?;
            let parts = vec![payload(t.rank(), 5, 3), payload(t.rank(), 11, 4)];
            let pending = ifused_reduce_start(t, &parts)?;
            let (fused, _) = pending.finish(&mut scratch)?;
            v.push(local);
            for part in fused {
                v.extend_from_slice(&part);
            }
            Ok(v)
        };
        let chan = run_spmd(TransportKind::Channel, p, f).expect("channel run");
        let sock = run_spmd(TransportKind::Socket, p, f).expect("socket run");
        assert_bits_equal(&chan, &sock, &format!("split-phase P={p}"));
    }
}

/// Fingerprint of a solver trace: every quantity a golden trace pins,
/// bit-exact (history and residuals enter as raw IEEE bits).
fn trace_fingerprint(res: &kryst_core::SolveResult) -> Vec<f64> {
    let mut out = vec![
        res.iterations as f64,
        if res.converged { 1.0 } else { 0.0 },
        res.history.len() as f64,
    ];
    // Fold the full history into a positional checksum of the raw bits —
    // any single-bit divergence anywhere in the trajectory changes it.
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for row in &res.history {
        for v in row {
            acc = acc.rotate_left(7) ^ v.to_bits();
        }
    }
    out.push((acc >> 32) as f64);
    out.push((acc & 0xffff_ffff) as f64);
    for v in &res.final_relres {
        let bits = v.to_bits();
        out.push((bits >> 32) as f64);
        out.push((bits & 0xffff_ffff) as f64);
    }
    out
}

/// GMRES(30) and GCRO-DR(30, 10) golden-trace fingerprints (iteration
/// trajectory, residual history bits) are bit-identical across backends:
/// every rank of both worlds runs the pinned solve and the per-rank
/// fingerprints must agree bitwise, channel vs socket.
#[test]
fn solver_traces_bit_identical_across_backends() {
    let n = 400;
    let f = move |t: &dyn Transport| -> Result<Vec<f64>, TransportError> {
        let a = laplace1d(n);
        let b = pinned_rhs(n, 42);
        let id = IdentityPrecond::new(n);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 90,
            ortho: OrthPath::Fused,
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        let mut fp = trace_fingerprint(&res);
        let mut ctx = SolverContext::new();
        let mut x2 = DMat::zeros(n, 1);
        let res2 = gcrodr::solve(&a, &id, &b, &mut x2, &opts, &mut ctx);
        fp.extend(trace_fingerprint(&res2));
        // Cross-check across ranks on the wire: the bitwise fingerprint sum
        // over P identical ranks must reduce without any rank diverging.
        let mut sum = fp.clone();
        let mut scratch = Vec::new();
        all_reduce_sum(t, &mut sum, &mut scratch)?;
        let p = t.nranks() as f64;
        for (i, (s, v)) in sum.iter().zip(&fp).enumerate() {
            assert_eq!(
                *s,
                v * p,
                "fingerprint[{i}] differs across ranks of one world"
            );
        }
        Ok(fp)
    };
    let chan = run_spmd(TransportKind::Channel, 2, f).expect("channel run");
    let sock = run_spmd(TransportKind::Socket, 2, f).expect("socket run");
    assert_bits_equal(&chan, &sock, "solver traces");
}

/// A worker process dying mid-collective must surface as a *typed* error on
/// the surviving ranks — never a panic, never a hang.
#[test]
fn socket_peer_death_is_typed_error() {
    let f = |t: &dyn Transport| -> Result<Vec<f64>, TransportError> {
        if t.rank() == 1 {
            // One healthy exchange, then die without a word.
            t.send(0, &[1.0])?;
            std::process::exit(3);
        }
        let mut buf = Vec::new();
        t.recv_into(1, &mut buf)?;
        assert_eq!(buf, [1.0]);
        t.recv_into(1, &mut buf)?; // peer is gone: must error, not hang
        Ok(buf)
    };
    let err = run_spmd(TransportKind::Socket, 2, f).expect_err("peer death must error");
    match &err {
        TransportError::PeerClosed { .. } | TransportError::RankFailed { .. } => {}
        other => panic!("expected PeerClosed/RankFailed, got {other}"),
    }
}

/// The PR-7 agglomerated AMG coarse gather/scatter executed over real
/// transport p2p: the corrected rows equal the subset solve applied to the
/// full coarse vector, and the wire counters match the modeled
/// gather/scatter traffic *exactly* (for 8-byte scalars).
#[test]
fn coarse_agglom_execute_matches_model_and_wire() {
    let prob = kryst_pde::poisson::poisson2d::<f64>(24, 24);
    let amg = kryst_precond::Amg::new(
        &prob.a,
        prob.near_nullspace.as_ref(),
        &kryst_precond::AmgOpts::default(),
    );
    let ranks = 4;
    let m = amg
        .coarse_agglom(ranks)
        .expect("agglomeration policy fires");
    assert!(m.gather_msgs > 0, "gather must move rows between ranks");
    assert!(m.subset < ranks, "subset {} gathers nothing", m.subset);
    let coarse_n = m.coarse_n;
    let rhs: Vec<f64> = (0..coarse_n).map(|i| (i % 13) as f64 * 0.5 - 3.0).collect();

    let model = m.clone();
    let rhs_c = rhs.clone();
    let run = run_spmd(TransportKind::Channel, ranks, move |t| {
        let src = kryst_par::Layout::even(model.coarse_n, model.ranks);
        let range = src.range(t.rank());
        let corrected = model.execute(t, &rhs_c[range], |v| {
            for x in v.iter_mut() {
                *x *= 2.0;
            }
        })?;
        Ok(corrected)
    })
    .expect("channel run");

    // Reassembled correction = the solve applied to the whole coarse vector.
    let got: Vec<f64> = run.results.iter().flatten().copied().collect();
    assert_eq!(got.len(), coarse_n);
    for (i, (g, r)) in got.iter().zip(&rhs).enumerate() {
        assert_eq!(*g, r * 2.0, "row {i}");
    }

    // Wire counters == the modeled gather + scatter traffic, exactly.
    let total = run
        .wire
        .iter()
        .fold(kryst_obs::WireSnapshot::default(), |acc, w| acc.merge(w));
    assert_eq!(
        total.msgs_sent as usize,
        m.gather_msgs + m.scatter_msgs,
        "modeled message count"
    );
    assert_eq!(
        total.bytes_sent as usize,
        m.gather_bytes + m.scatter_bytes,
        "modeled byte count"
    );
    assert_eq!(total.msgs_sent, total.msgs_recv, "conservation");
}

/// A persistent socket [`SpmdWorld`] built on the `kryst_calibrate` worker
/// executable: the all-reduce primitive must agree bitwise with the channel
/// world, and calibration must produce positive finite constants.
#[test]
fn socket_world_calibrates_with_borrowed_worker_exe() {
    let exe = std::path::PathBuf::from(env!("CARGO_BIN_EXE_kryst_calibrate"));
    let world = SpmdWorld::spawn_with_exe(TransportKind::Socket, 2, Some(&exe))
        .expect("socket world via calibrate bin");
    let cal = kryst_par::Calibration::measure(&world, 4).expect("socket calibration");
    world.shutdown().expect("clean shutdown");
    assert_eq!(cal.backend, "socket");
    assert_eq!(cal.nranks, 2);
    for (name, v) in [
        ("alpha_msg", cal.alpha_msg),
        ("alpha_reduce", cal.alpha_reduce),
        ("beta", cal.beta),
        ("gamma", cal.gamma),
    ] {
        assert!(v.is_finite() && v > 0.0, "{name} = {v}");
    }
}
