//! Cross-crate integration: solvers × preconditioners × problems.

use kryst_core::{cg, gcrodr, gmres, lgmres, OrthScheme, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
use kryst_pde::poisson::poisson2d;
use kryst_precond::{Amg, AmgOpts, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind};
use kryst_scalar::{Real, Scalar, C64};
use kryst_sparse::partition::partition_rcb;
use kryst_sparse::{Csr, SparseDirect};

fn true_relres<S: Scalar>(a: &Csr<S>, b: &DMat<S>, x: &DMat<S>) -> f64 {
    let mut r = a.apply(x);
    r.axpy(-S::one(), b);
    let mut worst = 0.0f64;
    for l in 0..b.ncols() {
        worst = worst.max(r.col_norm(l).to_f64() / b.col_norm(l).to_f64().max(1e-300));
    }
    worst
}

#[test]
fn amg_fgmres_poisson_matches_direct_solution() {
    let prob = poisson2d::<f64>(40, 40);
    let n = prob.a.nrows();
    let amg = Amg::new(
        &prob.a,
        prob.near_nullspace.as_ref(),
        &AmgOpts {
            smoother: SmootherKind::Gmres { iters: 2 },
            ..Default::default()
        },
    );
    let b = DMat::from_fn(n, 1, |i, _| ((i * 13) % 17) as f64 - 8.0);
    let mut x = DMat::zeros(n, 1);
    let opts = SolveOpts {
        rtol: 1e-10,
        side: PrecondSide::Flexible,
        ..Default::default()
    };
    let res = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
    assert!(res.converged);
    assert!(
        res.iterations <= 30,
        "AMG-FGMRES took {} iterations",
        res.iterations
    );
    // Compare against the sparse direct solution.
    let f = SparseDirect::factor(&prob.a).unwrap();
    let xd = f.solve_one(b.col(0));
    let mut diff = 0.0f64;
    let mut scale = 0.0f64;
    for i in 0..n {
        diff = diff.max((x[(i, 0)] - xd[i]).abs());
        scale = scale.max(xd[i].abs());
    }
    assert!(diff < 1e-7 * scale.max(1.0), "iterative vs direct: {diff}");
}

#[test]
fn amg_preconditioned_cg_on_elasticity() {
    let prob = elasticity3d::<f64>(&ElasticityOpts {
        ne: 5,
        ..Default::default()
    });
    let a = &prob.problem.a;
    let n = a.nrows();
    let amg = Amg::new(
        a,
        prob.problem.near_nullspace.as_ref(),
        &AmgOpts {
            smoother: SmootherKind::Chebyshev { degree: 2 },
            ..Default::default()
        },
    );
    let b = DMat::from_fn(n, 1, |i, _| prob.rhs[i]);
    let mut x = DMat::zeros(n, 1);
    let opts = SolveOpts {
        rtol: 1e-8,
        max_iters: 300,
        ..Default::default()
    };
    let res = cg::solve(a, &amg, &b, &mut x, &opts);
    assert!(res.converged, "AMG-PCG elasticity: {:?}", res.final_relres);
    assert!(res.iterations < 60, "AMG-PCG took {}", res.iterations);
    assert!(true_relres(a, &b, &x) < 1e-6);
}

#[test]
fn oras_gmres_maxwell_multiple_antennas() {
    let params = MaxwellParams::matching_solution(8);
    let (prob, geom) = maxwell3d(&params);
    let part = partition_rcb(&prob.coords, 4);
    let oras = Schwarz::<C64>::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Oras,
            overlap: 2,
            impedance: params.omega,
        },
    );
    let b = antenna_ring_rhs(&geom, &params, 4, 0.3, 0.5);
    let mut x = DMat::<C64>::zeros(prob.a.nrows(), 4);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 60,
        max_iters: 600,
        orth: OrthScheme::CholQr,
        ..Default::default()
    };
    let res = gmres::solve(&prob.a, &oras, &b, &mut x, &opts);
    assert!(res.converged, "ORAS-BGMRES: {:?}", res.final_relres);
    assert!(true_relres(&prob.a, &b, &x) < 1e-6);
}

#[test]
fn all_krylov_methods_agree_on_the_solution() {
    let prob = poisson2d::<f64>(20, 20);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 11) as f64) - 5.0);
    let opts = SolveOpts {
        rtol: 1e-11,
        restart: 25,
        recycle: 6,
        max_iters: 3000,
        ..Default::default()
    };
    let f = SparseDirect::factor(&prob.a).unwrap();
    let reference = f.solve_one(b.col(0));

    let mut solutions: Vec<(&str, DMat<f64>)> = Vec::new();
    let mut x = DMat::zeros(n, 1);
    assert!(gmres::solve(&prob.a, &id, &b, &mut x, &opts).converged);
    solutions.push(("gmres", x));
    let mut x = DMat::zeros(n, 1);
    assert!(cg::solve(&prob.a, &id, &b, &mut x, &opts).converged);
    solutions.push(("cg", x));
    let mut x = DMat::zeros(n, 1);
    assert!(lgmres::solve(&prob.a, &id, &b, &mut x, &opts).converged);
    solutions.push(("lgmres", x));
    let mut x = DMat::zeros(n, 1);
    let mut ctx = SolverContext::new();
    assert!(gcrodr::solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx).converged);
    solutions.push(("gcrodr", x));

    for (name, x) in &solutions {
        let mut diff = 0.0f64;
        for i in 0..n {
            diff = diff.max((x[(i, 0)] - reference[i]).abs());
        }
        assert!(
            diff < 1e-7,
            "{name} disagrees with the direct solve by {diff}"
        );
    }
}

#[test]
fn left_right_flexible_sides_reach_same_solution() {
    let prob = poisson2d::<f64>(16, 16);
    let n = prob.a.nrows();
    let amg = Amg::new(&prob.a, prob.near_nullspace.as_ref(), &AmgOpts::default());
    let b = DMat::from_fn(n, 1, |i, _| 1.0 + ((i * 3) % 7) as f64);
    let mut xs = Vec::new();
    for side in [PrecondSide::Left, PrecondSide::Right, PrecondSide::Flexible] {
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-10,
            side,
            ..Default::default()
        };
        let res = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
        assert!(res.converged, "{side:?}");
        xs.push(x);
    }
    for pair in xs.windows(2) {
        let mut diff = pair[0].clone();
        diff.axpy(-1.0, &pair[1]);
        assert!(diff.max_abs() < 1e-6, "sides disagree: {}", diff.max_abs());
    }
}

#[test]
fn block_width_does_not_change_the_answer() {
    let prob = poisson2d::<f64>(18, 18);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let p = 3;
    let b = DMat::from_fn(n, p, |i, j| (((i + 7 * j) % 13) as f64) - 6.0);
    let opts = SolveOpts {
        rtol: 1e-10,
        restart: 40,
        ..Default::default()
    };
    let mut xb = DMat::zeros(n, p);
    assert!(gmres::solve(&prob.a, &id, &b, &mut xb, &opts).converged);
    for l in 0..p {
        let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
        let mut xl = DMat::zeros(n, 1);
        assert!(gmres::solve(&prob.a, &id, &bl, &mut xl, &opts).converged);
        for i in 0..n {
            assert!(
                (xb[(i, l)] - xl[(i, 0)]).abs() < 1e-6,
                "block vs single mismatch at ({i},{l})"
            );
        }
    }
}

#[test]
fn gcrodr_handles_singular_rhs_block_via_rank_revealing_cholqr() {
    // Two identical RHS columns: the initial residual block is rank 1; the
    // rank-revealing CholQR (§V-C breakdown detection) must cope.
    let prob = poisson2d::<f64>(14, 14);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let mut b = DMat::zeros(n, 2);
    for i in 0..n {
        let v = ((i % 9) as f64) - 4.0;
        b[(i, 0)] = v;
        b[(i, 1)] = v; // duplicate column
    }
    let mut x = DMat::zeros(n, 2);
    let mut ctx = SolverContext::new();
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        recycle: 4,
        ..Default::default()
    };
    let res = gcrodr::solve(&prob.a, &id, &b, &mut x, &opts, &mut ctx);
    assert!(
        res.converged,
        "rank-deficient block: {:?}",
        res.final_relres
    );
    assert!(true_relres(&prob.a, &b, &x) < 1e-6);
}
