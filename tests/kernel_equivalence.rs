//! Equivalence properties for the fast kernel layer.
//!
//! The blocked/packed GEMM, the register-blocked SpMM, and the persistent
//! worker pool are performance rewrites of straightforward reference
//! kernels: every result here must match a naive implementation to
//! floating-point roundoff, across shapes that exercise the dispatch
//! thresholds, the packed-panel remainders, all `Op` combinations, both
//! scalar types, and nontrivial α/β accumulation.

use kryst_dense::{blas, DMat};
use kryst_rt::par::for_each_chunk_mut;
use kryst_scalar::{Real, Scalar, C64};
use kryst_sparse::Coo;

/// Textbook triple loop `C ⟵ α·op(A)·op(B) + β·C`.
fn naive_gemm<S: Scalar>(
    alpha: S,
    a: &DMat<S>,
    opa: blas::Op,
    b: &DMat<S>,
    opb: blas::Op,
    beta: S,
    c: &mut DMat<S>,
) {
    let at = |i: usize, l: usize| match opa {
        blas::Op::None => a[(i, l)],
        blas::Op::Trans => a[(l, i)],
        blas::Op::ConjTrans => a[(l, i)].conj(),
    };
    let bt = |l: usize, j: usize| match opb {
        blas::Op::None => b[(l, j)],
        blas::Op::Trans => b[(j, l)],
        blas::Op::ConjTrans => b[(j, l)].conj(),
    };
    let m = c.nrows();
    let n = c.ncols();
    let k = match opa {
        blas::Op::None => a.ncols(),
        _ => a.nrows(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = S::zero();
            for l in 0..k {
                acc += at(i, l) * bt(l, j);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

fn max_diff<S: Scalar>(x: &DMat<S>, y: &DMat<S>) -> f64 {
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&a, &b)| (a - b).abs().to_f64())
        .fold(0.0, f64::max)
}

fn shaped<S: Scalar>(m: usize, n: usize, f: impl Fn(usize) -> S) -> DMat<S> {
    DMat::from_fn(m, n, |i, j| f(i * 31 + j * 7))
}

fn fill_f64(s: usize) -> f64 {
    ((s % 23) as f64 - 11.0) / 4.0
}

fn fill_c64(s: usize) -> C64 {
    C64::new(((s % 17) as f64 - 8.0) / 4.0, ((s % 13) as f64 - 6.0) / 8.0)
}

fn op_dims(op: blas::Op, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        blas::Op::None => (rows, cols),
        _ => (cols, rows),
    }
}

fn gemm_case<S: Scalar>(m: usize, k: usize, n: usize, fill: impl Fn(usize) -> S + Copy, tol: f64) {
    let ops = [blas::Op::None, blas::Op::Trans, blas::Op::ConjTrans];
    // (α, β) pairs: plain product, accumulate, scale-and-subtract.
    let coeffs: [(S, S); 3] = [
        (S::one(), S::zero()),
        (S::one(), S::one()),
        (S::one() + S::one(), S::zero() - S::one()),
    ];
    for opa in ops {
        for opb in ops {
            let (am, ak) = op_dims(opa, m, k);
            let (bk, bn) = op_dims(opb, k, n);
            let a = shaped(am, ak, fill);
            let b = shaped(bk, bn, fill);
            for (alpha, beta) in coeffs {
                let c0 = shaped::<S>(m, n, fill);
                let mut fast = c0.clone();
                blas::gemm(alpha, &a, opa, &b, opb, beta, &mut fast);
                let mut slow = c0;
                naive_gemm(alpha, &a, opa, &b, opb, beta, &mut slow);
                let d = max_diff(&fast, &slow);
                assert!(d < tol, "gemm {m}x{k}x{n} {opa:?}x{opb:?} diff {d:.3e}");
            }
        }
    }
}

#[test]
fn blocked_gemm_matches_naive_f64() {
    // Shapes straddling the blocked-path threshold and the MR/NR/KC/MC/NC
    // panel edges: exact tile multiples, off-by-one remainders, k beyond one
    // KC panel, and small shapes that stay on the reference path.
    for (m, k, n) in [
        (64, 64, 16),   // exact tiles, blocked
        (67, 131, 23),  // remainders in every dimension, blocked
        (128, 300, 64), // k spans two KC panels, full MC x NC task
        (129, 257, 65), // one past every blocking parameter
        (4, 16384, 4),  // minimal tile, long k
        (5, 3, 2),      // reference path (below threshold)
        (1000, 30, 30), // Gram-like tall-skinny
    ] {
        gemm_case::<f64>(m, k, n, fill_f64, 1e-9 * k as f64);
    }
}

#[test]
fn blocked_gemm_matches_naive_complex() {
    for (m, k, n) in [(64, 64, 16), (67, 131, 23), (40, 500, 8), (6, 5, 4)] {
        gemm_case::<C64>(m, k, n, fill_c64, 1e-9 * k as f64);
    }
}

#[test]
fn spmm_matches_per_column_dense_product() {
    // 2-D Laplacian-ish pattern; p sweeps across the SPMM_COLS=8 register
    // block boundary (1 hits the spmv fast path).
    let nx = 24;
    let n = nx * nx;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i % nx != 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i % nx != nx - 1 {
            coo.push(i, i + 1, -1.0);
        }
        if i >= nx {
            coo.push(i, i - nx, -1.0);
        }
        if i + nx < n {
            coo.push(i, i + nx, -1.0);
        }
    }
    let a = coo.to_csr();
    let dense = DMat::from_fn(n, n, |i, j| a.get(i, j));
    for p in [1usize, 2, 3, 7, 8, 9, 16] {
        let x = shaped::<f64>(n, p, fill_f64);
        let mut y = DMat::zeros(n, p);
        a.spmm(&x, &mut y);
        let mut yref = DMat::zeros(n, p);
        naive_gemm(
            1.0,
            &dense,
            blas::Op::None,
            &x,
            blas::Op::None,
            0.0,
            &mut yref,
        );
        let d = max_diff(&y, &yref);
        assert!(d < 1e-10, "spmm p={p} diff {d:.3e}");
    }
}

#[test]
fn pool_parallel_matches_serial_chunked_update() {
    // The pool partitions work differently than a serial loop, but chunk
    // updates are elementwise: results must be bit-identical.
    let n = 200_000;
    let init: Vec<f64> = (0..n).map(fill_f64).collect();
    let update = |ci: usize, c: &mut [f64]| {
        for (k, x) in c.iter_mut().enumerate() {
            *x = 1.0000001 * *x + (ci * 64 + k) as f64 * 1e-9;
        }
    };
    let mut serial = init.clone();
    for_each_chunk_mut(&mut serial, 64, 1, update);
    let mut parallel = init;
    for_each_chunk_mut(&mut parallel, 64, 0, update);
    assert_eq!(serial, parallel, "pool execution must be bit-identical");
}

#[test]
fn pool_survives_panicking_job_and_keeps_working() {
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut v = vec![0u8; 4096];
        for_each_chunk_mut(&mut v, 64, 0, |ci, _c| {
            if ci == 13 {
                panic!("injected kernel failure");
            }
        });
    }));
    assert!(panic.is_err(), "panic must propagate to the dispatcher");
    // The pool must still process subsequent jobs normally.
    let mut v = vec![1u32; 100_000];
    for_each_chunk_mut(&mut v, 128, 0, |_ci, c| {
        for x in c.iter_mut() {
            *x += 1;
        }
    });
    assert!(v.iter().all(|&x| x == 2));
}

/// Halo/compute overlap correctness: computing the interior rows first and
/// the boundary rows afterwards (the overlapped schedule of the distributed
/// operator) must reproduce the unsplit SpMM **bit for bit** — same
/// register-block kernel, same nonzero order per row, under any
/// `KRYST_THREADS` (CI runs this file at 1 and 4). `p` sweeps across the
/// `SPMM_COLS = 8` register-block boundary; the matrix is large enough
/// (`n ≥ 4096`) to cross the parallel-dispatch threshold for the interior
/// set.
#[test]
fn row_split_spmm_is_bit_identical_to_unsplit() {
    use kryst_sparse::RowSplit;
    let nx = 72; // n = 5184 ≥ PAR_ROWS
    let n = nx * nx;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i % nx != 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i % nx != nx - 1 {
            coo.push(i, i + 1, -1.0);
        }
        if i >= nx {
            coo.push(i, i - nx, -1.0);
        }
        if i + nx < n {
            coo.push(i, i + nx, -1.0);
        }
    }
    let a = coo.to_csr();

    // 4 contiguous ownership ranges, as a 4-rank row decomposition would.
    let chunk = n / 4;
    let ranges: Vec<std::ops::Range<usize>> = (0..4)
        .map(|r| r * chunk..if r == 3 { n } else { (r + 1) * chunk })
        .collect();
    let split = RowSplit::build(&a, &ranges);

    // The split partitions the rows: disjoint, complete.
    let mut seen = vec![false; n];
    for &i in split.interior.iter().chain(&split.boundary) {
        assert!(!seen[i], "row {i} classified twice");
        seen[i] = true;
    }
    assert!(seen.iter().all(|&s| s), "rows dropped by the split");
    assert!(
        split.interior.len() >= 4096,
        "interior too small to hit the parallel path"
    );

    for p in [1usize, 4, 7, 8, 9, 16, 17] {
        let x = shaped::<f64>(n, p, fill_f64);
        let mut y_full = DMat::zeros(n, p);
        a.spmm(&x, &mut y_full);

        // Sentinel prefill proves every row is written by exactly one half.
        let mut y_split = DMat::from_fn(n, p, |_, _| 777.0);
        a.spmm_rows(&x, &mut y_split, &split.interior);
        a.spmm_rows(&x, &mut y_split, &split.boundary);

        for (k, (&g, &w)) in y_split.as_slice().iter().zip(y_full.as_slice()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "p={p} element {k}: split {g:e} vs unsplit {w:e}"
            );
        }
    }
}
