//! Fig. 7-style modeled strong-scaling of the fused iteration path.
//!
//! Runs real solves twice — classic vs fused orthogonalization — captures
//! the exact reduction counters, and models the per-iteration reduction
//! latency at P ∈ {512 … 8192} ranks with the α–β–γ [`CostModel`] (whose
//! stage charge is reconciled with the SPMD butterfly executor by test).
//! The acceptance claims of the communication-avoiding path:
//!
//! * GMRES(30): the fused path cuts modeled per-iteration reduction latency
//!   by **≥ 2×** (classic CholQR synchronizes 3× per iteration; fused runs
//!   at 1 plus the adaptive re-orthogonalization tail),
//! * GCRO-DR(30,10): **≥ 1.5×** even though deflated cycles carry the extra
//!   `CᴴW` projection (it rides in the same fused message),
//! * identical iteration trajectories at rtol 1e-8 — the latency win is not
//!   bought with extra iterations.

use kryst_core::{gcrodr, gmres, OrthPath, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::{CommSnapshot, CommStats, CostModel, IdentityPrecond};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};

const RANKS: [usize; 5] = [512, 1024, 2048, 4096, 8192];

/// 2-D convection–diffusion, first-order upwind convection: a strongly
/// nonsymmetric operator on which unpreconditioned GMRES(30) converges with
/// little Arnoldi cancellation — the representative regime where the fused
/// path runs near its 1-reduction/iteration floor.
fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

/// Reduction-only view of a snapshot: the per-iteration latency the §III-D
/// argument is about.
fn reductions_only(s: &CommSnapshot) -> CommSnapshot {
    CommSnapshot {
        reductions: s.reductions,
        reduction_bytes: s.reduction_bytes,
        fused_parts: s.fused_parts,
        ..Default::default()
    }
}

/// Modeled reduction seconds per iteration at `p` ranks.
fn red_latency_per_iter(m: &CostModel, s: &CommSnapshot, iters: usize, p: usize) -> f64 {
    m.time(&reductions_only(s), p).reduction / iters as f64
}

#[test]
fn fused_gmres30_cuts_modeled_reduction_latency_2x() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);

    let run = |path: OrthPath| {
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1000,
            ortho: path,
            stats: Some(stats.clone()),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{path:?} did not converge");
        (res, stats.snapshot())
    };
    let (classic, csnap) = run(OrthPath::Classic);
    let (fused, fsnap) = run(OrthPath::Fused);

    // Identical Krylov trajectory at rtol 1e-8.
    assert_eq!(fused.iterations, classic.iterations, "trajectory changed");
    let m = CostModel::curie_like();
    eprintln!(
        "gmres30_convdiff32: {} iterations, classic {} reds / fused {} reds",
        classic.iterations, csnap.reductions, fsnap.reductions
    );
    for p in RANKS {
        let tc = red_latency_per_iter(&m, &csnap, classic.iterations, p);
        let tf = red_latency_per_iter(&m, &fsnap, fused.iterations, p);
        eprintln!(
            "  P={p}: classic {tc:.3e} s/iter, fused {tf:.3e} s/iter, ratio {:.2}",
            tc / tf
        );
        assert!(
            tc / tf >= 2.0,
            "P = {p}: modeled per-iteration reduction latency ratio {:.3} < 2 \
             (classic {} reds, fused {} reds, {} iterations)",
            tc / tf,
            csnap.reductions,
            fsnap.reductions,
            classic.iterations
        );
    }
}

#[test]
fn fused_gcrodr30_10_cuts_modeled_reduction_latency_1p5x() {
    // The golden-trace problem: GMRES(30) stagnates, GCRO-DR(30,10)
    // converges — cold solve plus a warm recycled solve on a second RHS.
    let n = 400;
    let a = laplace1d(n);
    let mut rng = Rng64::seed_from_u64(42);
    let b = DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0));
    let mut rng2 = Rng64::seed_from_u64(43);
    let b2 = DMat::from_fn(n, 1, |_, _| rng2.gen_range(-1.0, 1.0));
    let id = IdentityPrecond::new(n);

    let run = |path: OrthPath| {
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ortho: path,
            stats: Some(stats.clone()),
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        let r1 = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
        let mut x2 = DMat::zeros(n, 1);
        let r2 = gcrodr::solve(&a, &id, &b2, &mut x2, &opts, &mut ctx);
        assert!(r1.converged && r2.converged, "{path:?}");
        (r1.iterations + r2.iterations, stats.snapshot())
    };
    let (classic_iters, csnap) = run(OrthPath::Classic);
    let (fused_iters, fsnap) = run(OrthPath::Fused);

    assert_eq!(fused_iters, classic_iters, "trajectory changed");
    let m = CostModel::curie_like();
    eprintln!(
        "gcrodr30_10_laplace400 (cold+warm): {} iterations, classic {} reds / fused {} reds",
        classic_iters, csnap.reductions, fsnap.reductions
    );
    for p in RANKS {
        let tc = red_latency_per_iter(&m, &csnap, classic_iters, p);
        let tf = red_latency_per_iter(&m, &fsnap, fused_iters, p);
        eprintln!(
            "  P={p}: classic {tc:.3e} s/iter, fused {tf:.3e} s/iter, ratio {:.2}",
            tc / tf
        );
        assert!(
            tc / tf >= 1.5,
            "P = {p}: modeled per-iteration reduction latency ratio {:.3} < 1.5 \
             (classic {} reds, fused {} reds, {} iterations)",
            tc / tf,
            csnap.reductions,
            fsnap.reductions,
            classic_iters
        );
    }
}

/// The modeled *total* per-iteration time (reduction + halo + compute) at
/// scale: the fused path must never be slower at any P, and the advantage
/// must grow with P (reductions are the non-scaling term the fused path
/// attacks).
#[test]
fn fused_total_modeled_time_advantage_grows_with_ranks() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let run = |path: OrthPath| {
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1000,
            ortho: path,
            stats: Some(stats.clone()),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged);
        (res, stats.snapshot())
    };
    let (_, csnap) = run(OrthPath::Classic);
    let (_, fsnap) = run(OrthPath::Fused);
    let m = CostModel::curie_like();
    let mut prev_ratio = 0.0;
    for p in RANKS {
        let tc = m.time(&csnap, p).total();
        let tf = m.time(&fsnap, p).total();
        let ratio = tc / tf;
        assert!(ratio >= 1.0, "P = {p}: fused modeled slower ({ratio:.3})");
        assert!(
            ratio >= prev_ratio,
            "P = {p}: advantage shrank ({ratio:.3} < {prev_ratio:.3})"
        );
        prev_ratio = ratio;
    }
    assert!(
        prev_ratio >= 1.5,
        "advantage at P = 8192 should be pronounced: {prev_ratio:.3}"
    );
}
