//! §III-D accounting: the communication overhead of recycling and the
//! orthogonalization schemes, measured with the instrumented counters.

use kryst_core::{gcrodr, gmres, OrthScheme, RecycleStrategy, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::{CommStats, DistOp, IdentityPrecond};
use kryst_pde::poisson::poisson2d;
use std::sync::Arc;

fn poisson_setup(nx: usize) -> (kryst_sparse::Csr<f64>, DMat<f64>) {
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    (prob.a, b)
}

/// GMRES with CholQR costs a fixed number of reductions per iteration;
/// a GCRO-DR deflated cycle adds exactly **one** more per iteration (the
/// `(I − C·Cᴴ)` projection) plus per-cycle extras — the paper's
/// `2(m−k)` vs `m` statement at the fused-reduction granularity.
#[test]
fn gcrodr_costs_one_extra_reduction_per_iteration() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);

    // Plain GMRES reductions per iteration.
    let stats_g = CommStats::new_shared();
    let opts_g = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        orth: OrthScheme::CholQr,
        stats: Some(Arc::clone(&stats_g)),
        ..Default::default()
    };
    let mut x = DMat::zeros(n, 1);
    let res_g = gmres::solve(&a, &id, &b, &mut x, &opts_g);
    assert!(res_g.converged);
    let per_iter_gmres = stats_g.snapshot().reductions as f64 / res_g.iterations as f64;

    // Second GCRO-DR solve (pure deflated cycles, same_system: no refresh).
    let stats_r = CommStats::new_shared();
    let opts_r = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        recycle: 8,
        orth: OrthScheme::CholQr,
        same_system: true,
        stats: Some(Arc::clone(&stats_r)),
        ..Default::default()
    };
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 1);
    let first = gcrodr::solve(&a, &id, &b, &mut x, &opts_r, &mut ctx);
    assert!(first.converged);
    stats_r.reset();
    let b2 = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
    let mut x = DMat::zeros(n, 1);
    let second = gcrodr::solve(&a, &id, &b2, &mut x, &opts_r, &mut ctx);
    assert!(second.converged);
    let snap = stats_r.snapshot();
    // Iterations × (GMRES cost + 1 projection) + small per-solve constants
    // (initial guess update line 8, cycle-start QRs).
    let expected_min = second.iterations as f64 * (per_iter_gmres + 1.0);
    let expected_max = expected_min + 4.0 + 2.0 * (second.iterations as f64 / 12.0 + 1.0);
    let measured = snap.reductions as f64;
    assert!(
        measured >= expected_min && measured <= expected_max,
        "reductions {measured} outside [{expected_min}, {expected_max}] \
         ({} iterations, {per_iter_gmres} per GMRES iteration)",
        second.iterations
    );
}

/// Strategy A pays one extra fused reduction per recycle-space refresh
/// (eq. 3a needs `[C V]ᴴ·U`); strategy B (eq. 3b) does not.
#[test]
fn strategy_a_costs_more_reductions_than_b() {
    let (a, b) = poisson_setup(28);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let mut counts = Vec::new();
    for strat in [RecycleStrategy::A, RecycleStrategy::B] {
        let stats = CommStats::new_shared();
        // Restart small so several refreshes happen (same_system = false).
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 8,
            recycle: 3,
            recycle_strategy: strat,
            stats: Some(Arc::clone(&stats)),
            max_iters: 600,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged, "{strat:?}");
        counts.push((res.iterations, stats.snapshot().reductions));
    }
    // Normalize by iterations (they may differ slightly between strategies).
    let per_a = counts[0].1 as f64 / counts[0].0 as f64;
    let per_b = counts[1].1 as f64 / counts[1].0 as f64;
    assert!(
        per_a > per_b,
        "A ({per_a:.3}/it) must communicate more than B ({per_b:.3}/it)"
    );
}

/// MGS costs one reduction per basis column; CholQR one per block — the
/// §III-A motivation for CholQR in recycling methods.
#[test]
fn mgs_reductions_grow_with_basis_cholqr_stays_constant() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let mut per_iter = Vec::new();
    for orth in [OrthScheme::CholQr, OrthScheme::Mgs] {
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            orth,
            stats: Some(Arc::clone(&stats)),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged);
        per_iter.push(stats.snapshot().reductions as f64 / res.iterations as f64);
    }
    assert!(
        per_iter[1] > 2.0 * per_iter[0],
        "MGS ({:.1}/it) must dwarf CholQR ({:.1}/it) in synchronizations",
        per_iter[1],
        per_iter[0]
    );
}

/// The distributed operator's halo traffic: message COUNT is independent of
/// the number of RHS columns (pseudo-block/block fusion), while the byte
/// volume scales linearly with p — §V-B2's "MPI buffers are p times bigger".
#[test]
fn spmm_messages_independent_of_p_bytes_linear_in_p() {
    let prob = poisson2d::<f64>(32, 32);
    let stats = CommStats::new_shared();
    let op = DistOp::new(prob.a, 8, Arc::clone(&stats));
    let n = 32 * 32;
    let mut runs = Vec::new();
    for p in [1usize, 4, 16] {
        stats.reset();
        let x = DMat::from_fn(n, p, |i, j| (i + j) as f64);
        let _ = kryst_par::LinOp::apply_new(&op, &x);
        let snap = stats.snapshot();
        runs.push((p, snap.p2p_messages, snap.p2p_bytes));
    }
    assert_eq!(runs[0].1, runs[1].1);
    assert_eq!(runs[1].1, runs[2].1);
    assert_eq!(runs[1].2, 4 * runs[0].2);
    assert_eq!(runs[2].2, 16 * runs[0].2);
}

/// `same_system` eliminates the refresh reductions entirely: the second
/// solve on an identical operator must communicate strictly less per
/// iteration than a second solve with refresh enabled.
#[test]
fn same_system_fast_path_saves_communication() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let mut per_iter = Vec::new();
    for same in [true, false] {
        let stats = CommStats::new_shared();
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 10,
            recycle: 4,
            same_system: same,
            stats: Some(Arc::clone(&stats)),
            max_iters: 600,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        assert!(gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx).converged);
        stats.reset();
        let b2 = DMat::from_fn(n, 1, |i, _| ((i % 4) as f64) - 1.5);
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&a, &id, &b2, &mut x, &opts, &mut ctx);
        assert!(res.converged);
        per_iter.push(stats.snapshot().reductions as f64 / res.iterations.max(1) as f64);
    }
    assert!(
        per_iter[0] < per_iter[1],
        "same_system ({:.2}/it) must beat refresh ({:.2}/it)",
        per_iter[0],
        per_iter[1]
    );
}
