//! §III-D conformance suite: the communication cost of every scheme,
//! asserted **exactly** against the typed event stream (`kryst-obs`).
//!
//! Each test runs a solver with both the instrumented counters and a
//! [`RingRecorder`] attached, then checks that the per-iteration
//! `comm.reductions` deltas tile the solve and reproduce the paper's
//! closed-form counts:
//!
//! * GMRES(m) with CholQR: **3 reductions per iteration** (two fused CGS
//!   projection passes + one Gram product) plus **1 per cycle start** (the
//!   CholQR of the restart residual),
//! * a GCRO-DR deflated cycle adds exactly **one** more per iteration (the
//!   `(I − C·Cᴴ)` projection) and one per-cycle `CᴴR` update,
//! * a recycle-space refresh costs 1 reduction (the column norms of `D`)
//!   plus **one extra for strategy A** (eq. (3a) needs `[C V]ᴴ·U`; eq. (3b)
//!   assumes orthogonality and skips it),
//! * `same_system` drops the `A·U` re-orthonormalization from the setup, so
//!   the setup span records 1 reduction instead of 2.

use kryst_core::{gcrodr, gmres, OrthPath, OrthScheme, RecycleStrategy, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_obs::{
    cumulative_comm, iteration_events, spans_of, Event, Recorder, RingRecorder, SpanKind,
};
use kryst_par::{CommStats, DistOp, IdentityPrecond};
use kryst_pde::poisson::poisson2d;
use std::sync::Arc;

fn poisson_setup(nx: usize) -> (kryst_sparse::Csr<f64>, DMat<f64>) {
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    (prob.a, b)
}

fn solve_end(events: &[Event]) -> kryst_obs::SolveEndEvent {
    events
        .iter()
        .find_map(|e| match e {
            Event::SolveEnd(e) => Some(e.clone()),
            _ => None,
        })
        .expect("SolveEnd emitted")
}

/// Number of distinct cycles seen in the iteration events.
fn cycle_count(events: &[Event]) -> usize {
    iteration_events(events)
        .iter()
        .map(|e| e.cycle)
        .max()
        .map(|c| c + 1)
        .unwrap_or(0)
}

/// GMRES(m) with CholQR: exactly `3·iterations + cycles` fused reductions —
/// and the deltas land on the right events (the cycle-start CholQR is
/// absorbed by the first iteration of its cycle).
#[test]
fn gmres_cholqr_reduction_count_is_exact() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let stats = CommStats::new_shared();
    let ring = Arc::new(RingRecorder::new(8192));
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        orth: OrthScheme::CholQr,
        ortho: OrthPath::Classic,
        stats: Some(Arc::clone(&stats)),
        recorder: Some(ring.clone() as Arc<dyn Recorder>),
        ..Default::default()
    };
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert!(res.converged);

    let events = ring.events();
    let iters = iteration_events(&events);
    assert_eq!(iters.len(), res.iterations);
    let cycles = cycle_count(&events);
    assert!(
        res.iterations > opts.restart,
        "need multiple cycles for the formula"
    );

    // Exact §III-D total.
    let expected = 3 * res.iterations as u64 + cycles as u64;
    assert_eq!(cumulative_comm(&events).reductions, expected);
    assert_eq!(stats.snapshot().reductions, expected);
    assert_eq!(solve_end(&events).comm_total.reductions, expected);

    // Exact per-event attribution: 4 on a cycle's first iteration (3 + the
    // restart-residual CholQR), 3 on every other.
    for w in iters.windows(2) {
        let (prev, ev) = (&w[0], &w[1]);
        let first_of_cycle = ev.cycle != prev.cycle;
        let want = if first_of_cycle { 4 } else { 3 };
        assert_eq!(
            ev.comm.reductions, want,
            "cycle {} iter {}: delta {}",
            ev.cycle, ev.iter, ev.comm.reductions
        );
    }
    assert_eq!(
        iters[0].comm.reductions, 4,
        "solve-start CholQR rides on iteration 0"
    );
}

/// Second GCRO-DR solve on the same operator (`same_system`, pure deflated
/// cycles): exactly `4·iterations + 2·cycles + 1` reductions — the paper's
/// "one extra reduction per iteration" claim at fused granularity, plus the
/// per-cycle `CᴴR` update and the one-off setup projection.
#[test]
fn gcrodr_deflated_cycle_count_is_exact() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let stats = CommStats::new_shared();
    let opts_warm = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        recycle: 8,
        orth: OrthScheme::CholQr,
        ortho: OrthPath::Classic,
        same_system: true,
        stats: Some(Arc::clone(&stats)),
        ..Default::default()
    };
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 1);
    assert!(gcrodr::solve(&a, &id, &b, &mut x, &opts_warm, &mut ctx).converged);

    stats.reset();
    let ring = Arc::new(RingRecorder::new(8192));
    let opts = SolveOpts {
        recorder: Some(ring.clone() as Arc<dyn Recorder>),
        ..opts_warm.clone()
    };
    let b2 = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
    let mut x = DMat::zeros(n, 1);
    let second = gcrodr::solve(&a, &id, &b2, &mut x, &opts, &mut ctx);
    assert!(second.converged);
    assert!(second.iterations > 0);

    let events = ring.events();
    let iters = iteration_events(&events);
    assert_eq!(iters.len(), second.iterations);
    let cycles = cycle_count(&events);

    // Setup projection (CᴴR) + per cycle (restart CholQR + CᴴR update)
    // + per iteration (3 CholQR orth + 1 C-projection).
    let expected = 1 + 2 * cycles as u64 + 4 * second.iterations as u64;
    assert_eq!(cumulative_comm(&events).reductions, expected);
    assert_eq!(stats.snapshot().reductions, expected);
    assert_eq!(solve_end(&events).comm_total.reductions, expected);

    // Interior iterations of a deflated cycle cost exactly 4 — one more
    // than GMRES's 3 (§III-D). The final event is excluded: it absorbs the
    // trailing `CᴴR` update by the tracer's tiling construction.
    for w in iters[..iters.len() - 1].windows(2) {
        let (prev, ev) = (&w[0], &w[1]);
        if ev.cycle == prev.cycle {
            assert_eq!(ev.comm.reductions, 4, "cycle {} iter {}", ev.cycle, ev.iter);
        }
    }
    // The recycle space never refreshes on the same_system fast path.
    assert!(spans_of(&events, SpanKind::RecycleRefresh).is_empty());
}

/// Refresh cost: strategy A's eq. (3a) refresh records exactly 2 reductions
/// (column norms of `D` + the fused `[C V]ᴴ·U` Gram), strategy B's eq. (3b)
/// exactly 1 — measured on the `RecycleRefresh` spans themselves.
#[test]
fn refresh_spans_show_strategy_a_extra_reduction() {
    let (a, b) = poisson_setup(28);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    for (strat, want) in [(RecycleStrategy::A, 2u64), (RecycleStrategy::B, 1u64)] {
        let ring = Arc::new(RingRecorder::new(16384));
        let opts = SolveOpts {
            rtol: 1e-9,
            restart: 8,
            recycle: 3,
            recycle_strategy: strat,
            stats: Some(CommStats::new_shared()),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            max_iters: 600,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged, "{strat:?}");
        let events = ring.events();
        let refreshes = spans_of(&events, SpanKind::RecycleRefresh);
        assert!(!refreshes.is_empty(), "{strat:?}: no refresh happened");
        for sp in refreshes {
            assert_eq!(
                sp.comm.reductions, want,
                "{strat:?} refresh at cycle {} recorded {} reductions",
                sp.cycle, sp.comm.reductions
            );
        }
    }
}

/// `same_system` skips the `A·U` CholQR on reuse: the setup span of a warm
/// solve records exactly 1 reduction (the `CᴴR` projection) on the fast
/// path and exactly 2 when the operator changed.
#[test]
fn same_system_setup_span_skips_au_qr() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    for (same, want) in [(true, 1u64), (false, 2u64)] {
        let opts_warm = SolveOpts {
            rtol: 1e-9,
            restart: 10,
            recycle: 4,
            same_system: same,
            stats: Some(CommStats::new_shared()),
            max_iters: 600,
            ..Default::default()
        };
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        assert!(gcrodr::solve(&a, &id, &b, &mut x, &opts_warm, &mut ctx).converged);
        let ring = Arc::new(RingRecorder::new(16384));
        let opts = SolveOpts {
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..opts_warm
        };
        let b2 = DMat::from_fn(n, 1, |i, _| ((i % 4) as f64) - 1.5);
        let mut x = DMat::zeros(n, 1);
        assert!(gcrodr::solve(&a, &id, &b2, &mut x, &opts, &mut ctx).converged);
        let events = ring.events();
        let setups = spans_of(&events, SpanKind::Setup);
        assert_eq!(setups.len(), 1);
        assert_eq!(
            setups[0].comm.reductions, want,
            "same_system={same}: setup recorded {} reductions",
            setups[0].comm.reductions
        );
    }
}

/// MGS costs one reduction per basis column (growing with the cycle); CholQR
/// stays flat at 3 — the §III-A case for CholQR, read off the event deltas.
#[test]
fn mgs_deltas_grow_with_basis_cholqr_stays_flat() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let mut per_iter = Vec::new();
    for orth in [OrthScheme::CholQr, OrthScheme::Mgs] {
        let ring = Arc::new(RingRecorder::new(8192));
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            orth,
            ortho: OrthPath::Classic,
            stats: Some(CommStats::new_shared()),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged);
        let events = ring.events();
        per_iter.push(cumulative_comm(&events).reductions as f64 / res.iterations as f64);
        // Flat vs growing deltas within one cycle.
        let iters = iteration_events(&events);
        let deltas: Vec<u64> = iters
            .iter()
            .filter(|e| e.cycle == 0 && e.iter > 0 && e.iter < 10)
            .map(|e| e.comm.reductions)
            .collect();
        match orth {
            OrthScheme::CholQr => assert!(deltas.iter().all(|&d| d == 3), "{deltas:?}"),
            OrthScheme::Mgs => assert!(deltas.windows(2).all(|w| w[1] > w[0]), "{deltas:?}"),
            _ => unreachable!(),
        }
    }
    assert!(
        per_iter[1] > 2.0 * per_iter[0],
        "MGS ({:.1}/it) must dwarf CholQR ({:.1}/it) in synchronizations",
        per_iter[1],
        per_iter[0]
    );
}

/// The distributed operator's halo traffic: message COUNT is independent of
/// the number of RHS columns (pseudo-block/block fusion), while the byte
/// volume scales linearly with p — §V-B2's "MPI buffers are p times bigger".
/// Asserted on both the counters and the emitted `HaloEvent`s.
#[test]
fn spmm_messages_independent_of_p_bytes_linear_in_p() {
    let prob = poisson2d::<f64>(32, 32);
    let stats = CommStats::new_shared();
    let ring = Arc::new(RingRecorder::new(64));
    let op =
        DistOp::new(prob.a, 8, Arc::clone(&stats)).with_recorder(ring.clone() as Arc<dyn Recorder>);
    let n = 32 * 32;
    let mut runs = Vec::new();
    for p in [1usize, 4, 16] {
        stats.reset();
        ring.clear();
        let x = DMat::from_fn(n, p, |i, j| (i + j) as f64);
        let _ = kryst_par::LinOp::apply_new(&op, &x);
        let snap = stats.snapshot();
        runs.push((p, snap.p2p_messages, snap.p2p_bytes));
        let events = ring.events();
        let halos: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Halo(h) => Some(h.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].messages, snap.p2p_messages);
        assert_eq!(halos[0].bytes, snap.p2p_bytes);
        assert_eq!(halos[0].cols, p);
    }
    assert_eq!(runs[0].1, runs[1].1);
    assert_eq!(runs[1].1, runs[2].1);
    assert_eq!(runs[1].2, 4 * runs[0].2);
    assert_eq!(runs[2].2, 16 * runs[0].2);
}

/// Within-cycle Arnoldi step index of each iteration event (0-based): the
/// `j` in the §III-D per-iteration formulas.
fn within_cycle_steps(iters: &[&kryst_obs::IterationEvent]) -> Vec<usize> {
    let mut steps = Vec::with_capacity(iters.len());
    let mut cur = usize::MAX;
    let mut j = 0;
    for ev in iters {
        if ev.cycle != cur {
            cur = ev.cycle;
            j = 0;
        }
        steps.push(j);
        j += 1;
    }
    steps
}

/// §III-D byte audit, classic path: iteration `j` of a GMRES(m)/CholQR
/// cycle reduces exactly `(2j + 3)·8` bytes in its 3 reductions — the two
/// CGS projection passes carry `(j+1)` coefficients each, the Gram product
/// one scalar — and the cycle-start CholQR adds its own 8-byte Gram. Locks
/// the accounting to the message sizes §III-D argues about, not a
/// `(j+2)·p·p` over-approximation.
#[test]
fn classic_reduction_bytes_are_exact() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let stats = CommStats::new_shared();
    let ring = Arc::new(RingRecorder::new(8192));
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        orth: OrthScheme::CholQr,
        ortho: OrthPath::Classic,
        stats: Some(Arc::clone(&stats)),
        recorder: Some(ring.clone() as Arc<dyn Recorder>),
        ..Default::default()
    };
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert!(res.converged);
    let events = ring.events();
    let iters = iteration_events(&events);
    let steps = within_cycle_steps(&iters);
    let w = std::mem::size_of::<f64>() as u64;
    for (ev, &j) in iters.iter().zip(&steps) {
        let first_of_cycle = j == 0;
        let want = (2 * j as u64 + 3) * w + u64::from(first_of_cycle) * w;
        assert_eq!(
            ev.comm.reduction_bytes, want,
            "cycle {} step {j}: {} bytes",
            ev.cycle, ev.comm.reduction_bytes
        );
    }
    // The classic path never fuses: no batched parts anywhere in the solve.
    assert_eq!(stats.snapshot().fused_parts, 0);
}

/// Fused-path conformance: the same solve runs the same iteration
/// trajectory, but iteration `j` reduces once (twice under the adaptive
/// re-orthogonalization budget) with the projection coefficients and the
/// Gram batched into one `(j+2)·8`-byte message of 2 fused parts.
#[test]
fn fused_reduction_bytes_and_parts_are_exact() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);

    let run = |path: OrthPath| {
        let stats = CommStats::new_shared();
        let ring = Arc::new(RingRecorder::new(8192));
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 20,
            orth: OrthScheme::CholQr,
            ortho: path,
            stats: Some(Arc::clone(&stats)),
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&a, &id, &b, &mut x, &opts);
        assert!(res.converged, "{path:?}");
        (res, stats.snapshot(), ring.events())
    };
    let (classic, csnap, _) = run(OrthPath::Classic);
    let (fused, fsnap, events) = run(OrthPath::Fused);

    // Same Krylov trajectory, strictly fewer synchronizations.
    assert_eq!(fused.iterations, classic.iterations);
    assert!(
        fsnap.reductions < csnap.reductions,
        "fused {} !< classic {}",
        fsnap.reductions,
        csnap.reductions
    );

    let iters = iteration_events(&events);
    let steps = within_cycle_steps(&iters);
    let w = std::mem::size_of::<f64>() as u64;
    for (ev, &j) in iters.iter().zip(&steps) {
        // The cycle-start CholQR is a plain (unfused) reduction riding on
        // the cycle's first iteration.
        let extra = u64::from(j == 0);
        let passes = ev.comm.reductions - extra;
        assert!(
            passes == 1 || passes == 2,
            "cycle {} step {j}: {} fused passes",
            ev.cycle,
            passes
        );
        assert_eq!(
            ev.comm.fused_parts,
            2 * passes,
            "cycle {} step {j}",
            ev.cycle
        );
        assert_eq!(
            ev.comm.reduction_bytes,
            passes * (j as u64 + 2) * w + extra * w,
            "cycle {} step {j}",
            ev.cycle
        );
    }
}

/// Fused deflated GCRO-DR cycles: the recycled-block projection `CᴴW` is a
/// third part of the *same* fused reduction — a deflated iteration `j`
/// synchronizes once (`k + j + 2` coefficients, 3 parts) instead of the
/// classic four times. §III-D's "one extra reduction per iteration" price
/// of deflation disappears into the batch.
#[test]
fn fused_deflated_cycle_parts_are_exact() {
    let (a, b) = poisson_setup(24);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let k = 8usize;
    let mk = |path: OrthPath| SolveOpts {
        rtol: 1e-8,
        restart: 20,
        recycle: k,
        orth: OrthScheme::CholQr,
        ortho: path,
        same_system: true,
        ..Default::default()
    };

    let run = |path: OrthPath| {
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        assert!(gcrodr::solve(&a, &id, &b, &mut x, &mk(path), &mut ctx).converged);
        let ring = Arc::new(RingRecorder::new(8192));
        let opts = SolveOpts {
            recorder: Some(ring.clone() as Arc<dyn Recorder>),
            stats: Some(CommStats::new_shared()),
            ..mk(path)
        };
        let b2 = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&a, &id, &b2, &mut x, &opts, &mut ctx);
        assert!(res.converged, "{path:?}");
        (res, ring.events())
    };
    let (classic, _) = run(OrthPath::Classic);
    let (fused, events) = run(OrthPath::Fused);
    assert_eq!(fused.iterations, classic.iterations);

    let iters = iteration_events(&events);
    let steps = within_cycle_steps(&iters);
    let w = std::mem::size_of::<f64>() as u64;
    // Interior iterations only: cycle boundaries additionally carry the
    // restart CholQR and the CᴴR update, and the trailing event absorbs the
    // end-of-cycle update by the tracer's tiling construction.
    let mut interior = 0;
    for (win, &j) in iters.windows(2).zip(&steps[1..]) {
        let ev = &win[1];
        if j == 0 || ev.iter == iters.last().unwrap().iter {
            continue;
        }
        let passes = ev.comm.reductions;
        assert!(
            passes == 1 || passes == 2,
            "cycle {} step {j}: {} fused passes",
            ev.cycle,
            passes
        );
        assert_eq!(
            ev.comm.fused_parts,
            3 * passes,
            "cycle {} step {j}",
            ev.cycle
        );
        assert_eq!(
            ev.comm.reduction_bytes,
            passes * (k as u64 + j as u64 + 2) * w,
            "cycle {} step {j}",
            ev.cycle
        );
        interior += 1;
    }
    assert!(interior > 0, "no interior deflated iterations observed");
}
