//! Pipelined-path acceptance: iteration equivalence, fallback safety, and
//! the modeled latency win at scale.
//!
//! The depth-1 pipelined path (`KRYST_PIPELINE=1`, [`OrthPath::Pipelined`])
//! reconstructs the next operator image from the fused coefficients instead
//! of waiting on the Gram reduction. It is *not* bit-identical to the fused
//! path — the recurrence reassociates floating-point work — so its contract
//! is behavioral:
//!
//! * **+10 % iterations at most** vs the fused path on the golden problems
//!   (the fig. 7 convection–diffusion operator and the laplace-1D GCRO-DR
//!   sequence) at block widths p ∈ {1, 4, 8},
//! * the depth-1 lag **falls back** to a synchronous re-prime whenever the
//!   PR-3 orthogonality budget trips or the block loses rank — breakdowns
//!   never corrupt the basis,
//! * the comm ledger shows the point of the exercise: overlapped reductions
//!   replace synchronous ones, and the modeled *exposed* reduction time at
//!   P = 8192 drops ≥ 1.5× vs fused once the hiding flops are extrapolated
//!   to a paper-scale problem (reduction counts per iteration are
//!   size-independent; the compute that hides them is not).

use kryst_core::cycle::{BlockArnoldi, PrecondMode};
use kryst_core::{gcrodr, gmres, OrthPath, OrthScheme, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::{blas, DMat};
use kryst_par::{CommSnapshot, CommStats, CostModel, DistOp, IdentityPrecond};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};

const RANKS: [usize; 5] = [512, 1024, 2048, 4096, 8192];
const WIDTHS: [usize; 3] = [1, 4, 8];

/// Fig. 7-style convection–diffusion (same operator as `comm_model.rs`).
fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

/// The +10 % budget, rounded up so small counts get at least one spare
/// iteration of slack.
fn budget(fused_iters: usize) -> usize {
    fused_iters + fused_iters.div_ceil(10)
}

#[test]
fn pipelined_gmres_within_ten_percent_of_fused_on_convdiff32() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    for p in WIDTHS {
        let b = DMat::from_fn(n, p, |i, j| (((i + 7 * j) % 13) as f64) - 6.0);
        let run = |path: OrthPath| {
            let stats = CommStats::new_shared();
            let opts = SolveOpts {
                rtol: 1e-8,
                restart: 30,
                max_iters: 1000,
                ortho: path,
                stats: Some(stats.clone()),
                ..Default::default()
            };
            let mut x = DMat::zeros(n, p);
            let res = gmres::solve(&a, &id, &b, &mut x, &opts);
            assert!(res.converged, "{path:?} p = {p} did not converge");
            (res.iterations, stats.snapshot())
        };
        let (fi, fsnap) = run(OrthPath::Fused);
        let (pi, psnap) = run(OrthPath::Pipelined);
        eprintln!(
            "gmres30 convdiff32 p={p}: fused {fi} iters ({} sync reds), \
             pipelined {pi} iters ({} sync + {} overlapped reds)",
            fsnap.reductions, psnap.reductions, psnap.overlapped_reductions
        );
        assert!(
            pi <= budget(fi),
            "p = {p}: pipelined took {pi} iterations, fused {fi} (+10 % budget {})",
            budget(fi)
        );
        // The ledger must show the trade: lagged Gram reductions move to the
        // overlapped counter; the default fused path stays fully synchronous.
        assert!(
            psnap.overlapped_reductions > 0,
            "p = {p}: nothing overlapped"
        );
        assert_eq!(
            fsnap.overlapped_reductions, 0,
            "fused path must not overlap"
        );
        assert!(
            psnap.reductions < fsnap.reductions,
            "p = {p}: pipelined sync reductions {} not below fused {}",
            psnap.reductions,
            fsnap.reductions
        );
    }
}

#[test]
fn pipelined_gcrodr_within_ten_percent_of_fused_on_laplace400() {
    // The golden-trace sequence: cold solve plus a warm recycled solve. The
    // recycle block exercises the pipelined C-projection recurrence
    // (`E_{j+1} = (Cᴴû − E·Sᵥ)·R⁻¹`) on the warm solve.
    let n = 400;
    let a = laplace1d(n);
    let id = IdentityPrecond::new(n);
    for p in WIDTHS {
        let mut rng = Rng64::seed_from_u64(42);
        let b = DMat::from_fn(n, p, |_, _| rng.gen_range(-1.0, 1.0));
        let mut rng2 = Rng64::seed_from_u64(43);
        let b2 = DMat::from_fn(n, p, |_, _| rng2.gen_range(-1.0, 1.0));
        let run = |path: OrthPath| {
            let stats = CommStats::new_shared();
            let opts = SolveOpts {
                rtol: 1e-8,
                restart: 30,
                recycle: 10,
                max_iters: 5000,
                ortho: path,
                stats: Some(stats.clone()),
                ..Default::default()
            };
            let mut ctx = SolverContext::new();
            let mut x = DMat::zeros(n, p);
            let r1 = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
            let mut x2 = DMat::zeros(n, p);
            let r2 = gcrodr::solve(&a, &id, &b2, &mut x2, &opts, &mut ctx);
            assert!(r1.converged && r2.converged, "{path:?} p = {p}");
            (r1.iterations + r2.iterations, stats.snapshot())
        };
        let (fi, fsnap) = run(OrthPath::Fused);
        let (pi, psnap) = run(OrthPath::Pipelined);
        eprintln!(
            "gcrodr30_10 laplace400 p={p} (cold+warm): fused {fi} iters \
             ({} sync reds), pipelined {pi} iters ({} sync + {} overlapped)",
            fsnap.reductions, psnap.reductions, psnap.overlapped_reductions
        );
        assert!(
            pi <= budget(fi),
            "p = {p}: pipelined took {pi} iterations, fused {fi} (+10 % budget {})",
            budget(fi)
        );
        assert!(
            psnap.overlapped_reductions > 0,
            "p = {p}: nothing overlapped"
        );
        assert!(
            psnap.reductions < fsnap.reductions,
            "p = {p}: pipelined sync reductions {} not below fused {}",
            psnap.reductions,
            fsnap.reductions
        );
    }
}

#[test]
fn depth1_lag_falls_back_on_rank_deficiency_and_keeps_basis_orthonormal() {
    // Rank-1 operator with a width-2 block: every step's image is exactly
    // rank deficient, so the rank-revealing refresh fires with the depth-1
    // lag armed. The recurrence must be abandoned (counted as a fallback) —
    // a refresh rewrites the block outside the recorded coefficients, so a
    // trusted reconstruction would corrupt the basis — and the breakdown
    // fixup's replacement columns must keep the basis orthonormal.
    let n = 16;
    let mut c = Coo::new(n, n);
    for i in 0..n {
        for j in 0..n {
            // A = u·wᵀ (outer product): exactly rank 1.
            c.push(
                i,
                j,
                (1.0 + 0.1 * (i % 3) as f64) * (1.0 + 0.05 * (j % 4) as f64),
            );
        }
    }
    let a = c.to_csr();
    let id = IdentityPrecond::new(n);
    let mode = PrecondMode::new(&id, PrecondSide::Right);
    let (m, p) = (3, 2);
    let mut arn = BlockArnoldi::new(&a, &mode, m, p, OrthScheme::CholQr, None, None)
        .with_path(OrthPath::Pipelined);
    let r0 = DMat::from_fn(n, p, |i, j| (((i * 7 + j * 5) % 11) as f64) - 5.0);
    arn.start(&r0);
    arn.step();
    assert!(
        arn.last_step_rank < p,
        "a rank-1 operator image must lose block rank"
    );
    assert_eq!(
        arn.pipeline_fallbacks(),
        1,
        "budget-tripped lagged step must be counted as a fallback \
         (overlapped {})",
        arn.pipeline_overlapped_steps()
    );
    assert_eq!(arn.pipeline_overlapped_steps(), 0);
    // The refresh's replacement columns keep the whole active basis
    // orthonormal — the invariant every later fused downdate relies on.
    let v = arn.v_active();
    let g = blas::adjoint_times(&v, &v);
    for i in 0..g.nrows() {
        for j in 0..g.ncols() {
            let want = if i == j { 1.0 } else { 0.0 };
            assert!(
                (g[(i, j)] - want).abs() < 1e-8,
                "basis lost orthonormality after the fallback: G[({i},{j})] = {}",
                g[(i, j)]
            );
        }
    }
}

#[test]
fn pipelined_survives_exact_breakdown_inside_the_solver() {
    // Minimal polynomial of degree 3: GMRES converges in 3 iterations and
    // the cycle hits exact breakdown with the lag still armed. The solver
    // must converge to the same iteration count as the fused path, for
    // several right-hand sides.
    let n = 60;
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, [1.0, 2.0, 5.0][i % 3]);
    }
    let a = c.to_csr();
    let id = IdentityPrecond::new(n);
    for seed in 0..5u64 {
        let mut rng = Rng64::seed_from_u64(100 + seed);
        let b = DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0));
        let run = |path: OrthPath| {
            let opts = SolveOpts {
                rtol: 1e-10,
                restart: 30,
                max_iters: 100,
                ortho: path,
                ..Default::default()
            };
            let mut x = DMat::zeros(n, 1);
            let res = gmres::solve(&a, &id, &b, &mut x, &opts);
            assert!(res.converged, "{path:?} seed {seed}");
            res.iterations
        };
        assert_eq!(
            run(OrthPath::Pipelined),
            run(OrthPath::Fused),
            "seed {seed}: breakdown handling changed the trajectory"
        );
    }
}

#[test]
fn pipelined_cuts_modeled_exposed_reduction_1p5x_at_8192_ranks() {
    // The acceptance claim of the latency-hiding path, reproduced exactly as
    // `kryst_prof` models it: run the real solves, capture the ledgers, then
    // extrapolate the *local work* counters to a paper-scale problem
    // (N = 1e8; per-iteration reduction counts do not change with problem
    // size, the flops available to hide them do) and charge the α–β–γ model.
    // The pipelined path must cut the exposed reduction time ≥ 1.5× vs fused
    // at P = 8192, and the advantage must not invert at smaller P.
    const PAPER_N: usize = 100_000_000;
    const DEMO_RANKS: usize = 8;
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let run = |path: OrthPath| {
        let stats = CommStats::new_shared();
        // The distributed operator records the flop/halo counters — the
        // lagged apply's flops are what the pipelined ledger credits as
        // reduction-hiding work.
        let op = DistOp::new(a.clone(), DEMO_RANKS, stats.clone());
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1000,
            ortho: path,
            stats: Some(stats.clone()),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&op, &id, &b, &mut x, &opts);
        assert!(res.converged, "{path:?}");
        (res.iterations, stats.snapshot())
    };
    let (fi, fsnap) = run(OrthPath::Fused);
    let (pi, psnap) = run(OrthPath::Pipelined);

    let scale = (PAPER_N / n).max(1) as u64;
    let scaled = |s: &CommSnapshot| CommSnapshot {
        flops: s.flops.saturating_mul(scale),
        overlap_flops: s.overlap_flops.saturating_mul(scale),
        reduction_overlap_flops: s.reduction_overlap_flops.saturating_mul(scale),
        ..*s
    };
    let m = CostModel::curie_like();
    for p in RANKS {
        let tf = m.time(&scaled(&fsnap), p).reduction / fi as f64;
        let tp = m.time(&scaled(&psnap), p).reduction / pi as f64;
        let cut = tf / tp;
        eprintln!("P={p}: fused {tf:.3e} s/iter exposed, pipelined {tp:.3e} s/iter, cut {cut:.2}x");
        assert!(cut >= 1.0, "P = {p}: pipelined modeled slower ({cut:.3})");
        if p == 8192 {
            assert!(
                cut >= 1.5,
                "P = 8192: exposed-reduction cut {cut:.3} < 1.5 \
                 (fused {} sync reds, pipelined {} sync + {} overlapped, \
                 overlap flops {})",
                fsnap.reductions,
                psnap.reductions,
                psnap.overlapped_reductions,
                psnap.reduction_overlap_flops
            );
        }
    }
}
