//! End-to-end recycling scenarios across sequences of linear systems —
//! the paper's §III-B (non-variable) and §IV-C (slowly varying) workloads.

use kryst_core::pseudo::{self, PseudoMethod};
use kryst_core::{gcrodr, gmres, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::heat::HeatSequence;
use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
use kryst_pde::poisson::{paper_rhs_sequence, poisson2d};
use kryst_precond::{Amg, AmgOpts, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind};
use kryst_scalar::C64;
use kryst_sparse::partition::partition_rcb;

#[test]
fn heat_stepping_recycling_saves_a_third_of_iterations() {
    let steps = 6;
    let opts = SolveOpts {
        rtol: 1e-9,
        restart: 25,
        recycle: 8,
        same_system: true,
        ..Default::default()
    };

    let run = |recycle: bool| -> usize {
        let mut seq = HeatSequence::<f64>::new(30, 30, 0.05);
        let n = seq.n();
        let id = IdentityPrecond::new(n);
        let mut ctx = SolverContext::new();
        let mut total = 0;
        for _ in 0..steps {
            let b = DMat::from_col_major(n, 1, seq.next_rhs());
            let mut x = DMat::zeros(n, 1);
            let res = if recycle {
                gcrodr::solve(&seq.a, &id, &b, &mut x, &opts, &mut ctx)
            } else {
                gmres::solve(&seq.a, &id, &b, &mut x, &opts)
            };
            assert!(res.converged);
            total += res.iterations;
            seq.advance(x.col(0));
        }
        total
    };
    let gmres_total = run(false);
    let gcrodr_total = run(true);
    assert!(
        (gcrodr_total as f64) < 0.9 * gmres_total as f64,
        "recycling {gcrodr_total} !≪ GMRES {gmres_total}"
    );
}

#[test]
fn poisson_sequence_with_variable_amg_preconditioner() {
    // The full §IV-B pipeline: nonlinear GAMG + FGCRO-DR + same_system.
    let nx = 32;
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let amg = Amg::new(
        &prob.a,
        prob.near_nullspace.as_ref(),
        &AmgOpts {
            smoother: SmootherKind::Gmres { iters: 3 },
            ..Default::default()
        },
    );
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Flexible,
        same_system: true,
        ..Default::default()
    };
    let mut ctx = SolverContext::new();
    let mut gcrodr_iters = Vec::new();
    let mut gmres_iters = Vec::new();
    for rhs in &rhss {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let r = gcrodr::solve(&prob.a, &amg, &b, &mut x, &opts, &mut ctx);
        assert!(r.converged);
        gcrodr_iters.push(r.iterations);
        let mut x = DMat::zeros(n, 1);
        let r = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
        assert!(r.converged);
        gmres_iters.push(r.iterations);
    }
    let total_g: usize = gmres_iters.iter().sum();
    let total_r: usize = gcrodr_iters.iter().sum();
    // The AMG preconditioner is strong at this scale (≤10 iterations per
    // solve), so the laptop-scale assertion is "recycling never loses";
    // the large *gains* of the paper's Fig. 2 appear in the weakly
    // preconditioned regime covered by the other tests in this file.
    assert!(
        total_r <= total_g,
        "FGCRO-DR {total_r} !<= FGMRES {total_g}"
    );
    for i in 1..4 {
        assert!(
            gcrodr_iters[i] <= gmres_iters[i],
            "RHS {i}: {} !<= {}",
            gcrodr_iters[i],
            gmres_iters[i]
        );
    }
}

#[test]
fn maxwell_antenna_sequence_with_oras() {
    // §V-C style: consecutive transmitters, ORAS + GCRO-DR recycling.
    let params = MaxwellParams::matching_solution(6);
    let (prob, geom) = maxwell3d(&params);
    let n = prob.a.nrows();
    let part = partition_rcb(&prob.coords, 4);
    let oras = Schwarz::<C64>::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Oras,
            overlap: 2,
            impedance: params.omega,
        },
    );
    let rhs = antenna_ring_rhs(&geom, &params, 4, 0.3, 0.5);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 40,
        recycle: 10,
        same_system: true,
        max_iters: 800,
        ..Default::default()
    };
    let mut ctx = SolverContext::<C64>::new();
    let mut iters = Vec::new();
    for l in 0..4 {
        let b = DMat::from_col_major(n, 1, rhs.col(l).to_vec());
        let mut x = DMat::<C64>::zeros(n, 1);
        let res = gcrodr::solve(&prob.a, &oras, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged, "antenna {l}: {:?}", res.final_relres);
        iters.push(res.iterations);
    }
    assert!(
        iters[1..].iter().all(|&i| i < iters[0]),
        "recycling across antennas: {iters:?}"
    );
}

#[test]
fn pseudo_block_contexts_persist_across_solves() {
    let prob = poisson2d::<f64>(20, 20);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b1 = DMat::from_fn(n, 3, |i, j| (((i + j) % 7) as f64) - 3.0);
    let b2 = DMat::from_fn(n, 3, |i, j| (((i * 2 + j) % 9) as f64) - 4.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        recycle: 6,
        same_system: true,
        ..Default::default()
    };
    let mut ctxs: Vec<SolverContext<f64>> = Vec::new();
    let mut x = DMat::zeros(n, 3);
    let r1 = pseudo::solve(
        &prob.a,
        &id,
        &b1,
        &mut x,
        &opts,
        PseudoMethod::GcroDr,
        Some(&mut ctxs),
    );
    assert!(r1.converged);
    assert_eq!(ctxs.len(), 3);
    assert!(ctxs.iter().all(|c| c.recycled_cols() > 0));
    // Re-solving the same systems must be much cheaper with the matured
    // per-RHS recycle spaces.
    let mut x = DMat::zeros(n, 3);
    let r2 = pseudo::solve(
        &prob.a,
        &id,
        &b1,
        &mut x,
        &opts,
        PseudoMethod::GcroDr,
        Some(&mut ctxs),
    );
    assert!(r2.converged);
    assert!(
        r2.iterations < r1.iterations,
        "{} !< {}",
        r2.iterations,
        r1.iterations
    );
    // A different RHS still converges correctly through the recycled state.
    let mut x = DMat::zeros(n, 3);
    let r3 = pseudo::solve(
        &prob.a,
        &id,
        &b2,
        &mut x,
        &opts,
        PseudoMethod::GcroDr,
        Some(&mut ctxs),
    );
    assert!(r3.converged);
}

#[test]
fn block_gcrodr_beats_consecutive_gcrodr_in_iterations() {
    // The Fig. 8 ordering: block methods need far fewer (block) iterations
    // per RHS than single-RHS recycling needs iterations.
    let prob = poisson2d::<f64>(24, 24);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let p = 4;
    let b = DMat::from_fn(n, p, |i, j| (((i * (j + 1)) % 11) as f64) - 5.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 5,
        same_system: true,
        ..Default::default()
    };

    // Consecutive single-RHS GCRO-DR.
    let mut ctx = SolverContext::new();
    let mut consecutive = 0usize;
    for l in 0..p {
        let bl = DMat::from_col_major(n, 1, b.col(l).to_vec());
        let mut x = DMat::zeros(n, 1);
        let r = gcrodr::solve(&prob.a, &id, &bl, &mut x, &opts, &mut ctx);
        assert!(r.converged);
        consecutive += r.iterations;
    }
    // One block solve.
    let mut ctxb = SolverContext::new();
    let mut xb = DMat::zeros(n, p);
    let rb = gcrodr::solve(&prob.a, &id, &b, &mut xb, &opts, &mut ctxb);
    assert!(rb.converged);
    assert!(
        rb.iterations * p < consecutive * 2,
        "block {} block-iters vs {} consecutive iters",
        rb.iterations,
        consecutive
    );
    // And block iterations alone are far fewer than the total.
    assert!(
        rb.iterations < consecutive,
        "{} !< {consecutive}",
        rb.iterations
    );
}
