//! Steady-state preconditioner applies perform **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; after a few
//! warm-up applies (which populate the internal workspace pools) every
//! further apply of every preconditioner must leave the allocation counter
//! untouched. Runs pinned to `KRYST_THREADS=1`: the worker-pool dispatch
//! path allocates its job handle, which is a per-dispatch cost independent
//! of the preconditioners under test here.
//!
//! Everything lives in a single `#[test]` so the thread-count pin happens
//! before the first kernel call in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use kryst_dense::DMat;
use kryst_par::{LinOp, PrecondOp, PrecondPrecision};
use kryst_pde::elasticity::ElasticityOpts;
use kryst_pde::poisson::poisson2d;
use kryst_pde::stencil::{ElasticityStencil, PoissonStencil};
use kryst_precond::{Amg, AmgOpts, Chebyshev, Ilu0, Jacobi, Schwarz, SchwarzOpts, SchwarzVariant};
use kryst_sparse::partition::partition_rcb;

fn assert_zero_alloc_linop(op: &dyn LinOp<f64>, p: usize, what: &str) {
    let n = op.nrows();
    let x = DMat::from_fn(n, p, |i, j| (((i * 7 + j * 13) % 19) as f64) - 9.0);
    let mut y = DMat::zeros(n, p);
    for _ in 0..3 {
        op.apply(&x, &mut y);
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..5 {
        op.apply(&x, &mut y);
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "{what} p={p}: {delta} allocations across 5 steady-state applies"
    );
}

fn assert_zero_alloc(m: &dyn PrecondOp<f64>, p: usize, what: &str) {
    let n = m.nrows();
    let r = DMat::from_fn(n, p, |i, j| (((i * 7 + j * 13) % 19) as f64) - 9.0);
    let mut z = DMat::zeros(n, p);
    // Warm up: first applies grow the workspace pools to their fixed point.
    for _ in 0..3 {
        m.apply(&r, &mut z);
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..5 {
        m.apply(&r, &mut z);
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "{what} p={p}: {delta} allocations across 5 steady-state applies"
    );
}

#[test]
fn steady_state_applies_do_not_allocate() {
    // Pin the pool to one thread before anything touches it (dispatching to
    // the pool allocates a job handle; the serial path must not).
    std::env::set_var("KRYST_THREADS", "1");

    let prob = poisson2d::<f64>(32, 24);
    let a = &prob.a;

    let jacobi = Jacobi::new(a, 0.8);
    let chebyshev = Chebyshev::new(a, 3, 30.0);
    let ilu = Ilu0::new(a).expect("factorizable");
    let amg = Amg::new(a, prob.near_nullspace.as_ref(), &AmgOpts::default());
    let part = partition_rcb(&prob.coords, 8);
    let asm = Schwarz::new(
        a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Asm,
            overlap: 2,
            ..Default::default()
        },
    );
    let ras = Schwarz::new(
        a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Ras,
            overlap: 2,
            ..Default::default()
        },
    );

    // Single-precision variants: same contract. The ILU low path owns a
    // packed f32 scratch block that grows on first apply at each width —
    // the warm-up applies cover that, and clear+resize reuses capacity.
    let ilu_lp = Ilu0::with_precision(a, PrecondPrecision::Single).expect("factorizable");
    let amg_lp = Amg::with_precision(
        a,
        prob.near_nullspace.as_ref(),
        &AmgOpts::default(),
        PrecondPrecision::Single,
    );
    let ras_lp = Schwarz::with_precision(
        a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Ras,
            overlap: 2,
            ..Default::default()
        },
        PrecondPrecision::Single,
    );

    // Matrix-free stencil operators: zero state beyond the geometry, so
    // applies must be allocation-free from the first call onward.
    let poisson_st = PoissonStencil::<f64>::dim2(32, 24);
    let elasticity_st = ElasticityStencil::<f64>::new(&ElasticityOpts {
        ne: 6,
        ..Default::default()
    });

    for p in [1usize, 4, 8] {
        assert_zero_alloc(&jacobi, p, "jacobi");
        assert_zero_alloc(&chebyshev, p, "chebyshev");
        assert_zero_alloc(&ilu, p, "ilu0");
        assert_zero_alloc(&amg, p, "amg");
        assert_zero_alloc(&asm, p, "schwarz/asm");
        assert_zero_alloc(&ras, p, "schwarz/ras");
        assert_zero_alloc(&ilu_lp, p, "ilu0/f32");
        assert_zero_alloc(&amg_lp, p, "amg/f32");
        assert_zero_alloc(&ras_lp, p, "schwarz/ras/f32");
        assert_zero_alloc_linop(&poisson_st, p, "stencil/poisson2d");
        assert_zero_alloc_linop(&elasticity_st, p, "stencil/elasticity");
    }
}
