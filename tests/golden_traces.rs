//! Golden-trace regression tests.
//!
//! GMRES(30) and GCRO-DR(30, 10) on the 1-D Laplacian (`n = 400`) with a
//! pinned-seed random RHS. Iteration counts, cycle counts, and the exact
//! reduction totals are pinned integers; per-RHS final residuals are
//! compared against the checked-in JSON snapshots with a float tolerance.
//! All kernels in the workspace preserve per-element summation order under
//! threading, so these runs are bit-deterministic.
//!
//! Regenerate after an intentional numerical change with:
//! `KRYST_GOLDEN_REGEN=1 cargo test -p kryst-bench --test golden_traces`

use kryst_core::{gcrodr, gmres, OrthPath, SolveOpts, SolveResult, SolverContext};
use kryst_dense::DMat;
use kryst_obs::json::{f64_array, JsonValue};
use kryst_obs::{cumulative_comm, iteration_events, Event, Recorder, RingRecorder};
use kryst_par::{CommStats, IdentityPrecond};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};
use std::path::PathBuf;
use std::sync::Arc;

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

fn pinned_rhs(n: usize, seed: u64) -> DMat<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0))
}

struct Golden {
    solver: String,
    iterations: usize,
    cycles: usize,
    converged: bool,
    reductions: u64,
    final_relres: Vec<f64>,
}

impl Golden {
    fn capture(name: &str, events: &[Event], res: &SolveResult) -> Golden {
        let cycles = iteration_events(events)
            .iter()
            .map(|e| e.cycle)
            .max()
            .map(|c| c + 1)
            .unwrap_or(0);
        Golden {
            solver: name.to_string(),
            iterations: res.iterations,
            cycles,
            converged: res.converged,
            reductions: cumulative_comm(events).reductions,
            final_relres: res.final_relres.clone(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"solver\":\"{}\",\"iterations\":{},\"cycles\":{},\"converged\":{},\
             \"reductions\":{},\"final_relres\":{}}}\n",
            self.solver,
            self.iterations,
            self.cycles,
            self.converged,
            self.reductions,
            f64_array(&self.final_relres)
        )
    }

    fn from_json(src: &str) -> Golden {
        let v = JsonValue::parse(src).expect("golden snapshot parses");
        Golden {
            solver: v
                .get("solver")
                .and_then(|s| s.as_str())
                .expect("solver")
                .to_string(),
            iterations: v
                .get("iterations")
                .and_then(|s| s.as_usize())
                .expect("iterations"),
            cycles: v.get("cycles").and_then(|s| s.as_usize()).expect("cycles"),
            converged: v
                .get("converged")
                .and_then(|s| s.as_bool())
                .expect("converged"),
            reductions: v
                .get("reductions")
                .and_then(|s| s.as_f64())
                .expect("reductions") as u64,
            final_relres: v
                .get("final_relres")
                .and_then(|s| s.as_array())
                .expect("final_relres")
                .iter()
                .map(|x| x.as_f64().expect("residual"))
                .collect(),
        }
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_against_golden(file: &str, got: &Golden) {
    let path = golden_path(file);
    if std::env::var_os("KRYST_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got.to_json()).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with KRYST_GOLDEN_REGEN=1",
            path.display()
        )
    });
    let want = Golden::from_json(&src);
    assert_eq!(got.solver, want.solver, "{file}: solver");
    assert_eq!(
        got.iterations, want.iterations,
        "{file}: iteration count drifted"
    );
    assert_eq!(got.cycles, want.cycles, "{file}: cycle count drifted");
    assert_eq!(got.converged, want.converged, "{file}: convergence flag");
    assert_eq!(
        got.reductions, want.reductions,
        "{file}: reduction total drifted"
    );
    assert_eq!(got.final_relres.len(), want.final_relres.len());
    for (l, (g, w)) in got.final_relres.iter().zip(&want.final_relres).enumerate() {
        let scale = w.abs().max(1e-300);
        assert!(
            (g - w).abs() / scale < 1e-6,
            "{file}: final relres[{l}] {g:e} vs golden {w:e}"
        );
    }
}

fn instrumented_opts(base: SolveOpts, ring: &Arc<RingRecorder>) -> SolveOpts {
    SolveOpts {
        stats: Some(CommStats::new_shared()),
        recorder: Some(Arc::clone(ring) as Arc<dyn Recorder>),
        ..base
    }
}

/// Unpreconditioned GMRES(30) stagnates on the 1-D Laplacian — the paper's
/// motivating failure mode for deflation. The stagnation trace itself is the
/// golden: the capped iteration count and the residual plateau are pinned.
#[test]
fn gmres30_laplace400_matches_golden() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1500,
            ortho: OrthPath::Classic,
            ..Default::default()
        },
        &ring,
    );
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert!(
        !res.converged,
        "GMRES(30) restart stagnation is the expected behavior here"
    );
    assert_eq!(res.iterations, 1500);
    let got = Golden::capture("gmres", &ring.events(), &res);
    check_against_golden("gmres30_laplace400.json", &got);
}

/// The fused (communication-avoiding) path has its own pinned trace: the
/// iteration trajectory matches the classic path exactly while the reduction
/// total drops from `3·iters + cycles` to `iters + cycles`.
#[test]
fn gmres30_laplace400_fused_matches_golden() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1500,
            ortho: OrthPath::Fused,
            ..Default::default()
        },
        &ring,
    );
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert_eq!(res.iterations, 1500);
    let got = Golden::capture("gmres", &ring.events(), &res);
    // Fused CholQR: one reduction per iteration plus the cycle-start CholQR,
    // with an adaptive second pass only where the orthogonality-loss budget
    // demands one — never more than 2 per iteration.
    let cycles = res.iterations / 30;
    assert!(
        got.reductions >= (res.iterations + cycles) as u64,
        "fused GMRES floor is 1 reduction/iteration + 1/cycle"
    );
    assert!(
        got.reductions <= (2 * res.iterations + cycles) as u64,
        "fused GMRES ceiling is 2 reductions/iteration + 1/cycle"
    );
    check_against_golden("gmres30_laplace400_fused.json", &got);
}

#[test]
fn gcrodr30_10_laplace400_matches_golden() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ortho: OrthPath::Classic,
            ..Default::default()
        },
        &ring,
    );
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 1);
    let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
    assert!(
        res.converged,
        "GCRO-DR(30,10) on laplace400: {:?}",
        res.final_relres
    );
    let got = Golden::capture("gcrodr", &ring.events(), &res);
    check_against_golden("gcrodr30_10_laplace400.json", &got);

    // Warm restart on a second pinned RHS: the recycle space must make the
    // second solve cheaper, and its trace is pinned too.
    let b2 = pinned_rhs(n, 43);
    let ring2 = Arc::new(RingRecorder::new(1 << 16));
    let opts2 = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ortho: OrthPath::Classic,
            ..Default::default()
        },
        &ring2,
    );
    let mut x2 = DMat::zeros(n, 1);
    let res2 = gcrodr::solve(&a, &id, &b2, &mut x2, &opts2, &mut ctx);
    assert!(res2.converged);
    assert!(
        res2.iterations < res.iterations,
        "recycling must cut iterations: {} !< {}",
        res2.iterations,
        res.iterations
    );
    let got2 = Golden::capture("gcrodr", &ring2.events(), &res2);
    check_against_golden("gcrodr30_10_laplace400_warm.json", &got2);
}

/// Fused-path GCRO-DR: the recycled-block projection `CᴴW` rides inside the
/// same fused reduction as the basis projection and Gram matrix, so deflated
/// cycles also run at one reduction per iteration.
#[test]
fn gcrodr30_10_laplace400_fused_matches_golden() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ortho: OrthPath::Fused,
            ..Default::default()
        },
        &ring,
    );
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 1);
    let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
    assert!(
        res.converged,
        "fused GCRO-DR(30,10) on laplace400: {:?}",
        res.final_relres
    );
    let got = Golden::capture("gcrodr", &ring.events(), &res);
    check_against_golden("gcrodr30_10_laplace400_fused.json", &got);

    // Warm restart: recycling still pays off on the fused path.
    let b2 = pinned_rhs(n, 43);
    let ring2 = Arc::new(RingRecorder::new(1 << 16));
    let opts2 = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ortho: OrthPath::Fused,
            ..Default::default()
        },
        &ring2,
    );
    let mut x2 = DMat::zeros(n, 1);
    let res2 = gcrodr::solve(&a, &id, &b2, &mut x2, &opts2, &mut ctx);
    assert!(res2.converged);
    assert!(
        res2.iterations < res.iterations,
        "recycling must cut iterations on the fused path: {} !< {}",
        res2.iterations,
        res.iterations
    );
    let got2 = Golden::capture("gcrodr", &ring2.events(), &res2);
    check_against_golden("gcrodr30_10_laplace400_fused_warm.json", &got2);
}

/// GMRES(30) with a smoothed-aggregation AMG right preconditioner on the
/// 2-D Poisson problem (24×24 interior grid). Pins the whole preconditioned
/// trajectory: AMG setup (aggregation, prolongator smoothing, Galerkin
/// products) and every V-cycle apply must stay bit-deterministic across
/// thread counts, so the iteration count, reduction total, and final
/// residual are all exact.
#[test]
fn gmres30_amg_poisson24_matches_golden() {
    let p = kryst_pde::poisson::poisson2d::<f64>(24, 24);
    let n = p.a.nrows();
    let amg = kryst_precond::Amg::new(
        &p.a,
        p.near_nullspace.as_ref(),
        &kryst_precond::AmgOpts::default(),
    );
    let b = pinned_rhs(n, 42);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-10,
            restart: 30,
            max_iters: 200,
            ortho: OrthPath::Classic,
            ..Default::default()
        },
        &ring,
    );
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&p.a, &amg, &b, &mut x, &opts);
    assert!(
        res.converged,
        "GMRES(30)+AMG on poisson 24x24: {:?}",
        res.final_relres
    );
    let got = Golden::capture("gmres", &ring.events(), &res);
    check_against_golden("gmres30_amg_poisson24.json", &got);
}

/// GCRO-DR(30, 10) with an ILU(0) right preconditioner on 2-D Poisson
/// (20×20 interior grid, where ILU(0) actually discards fill — on a
/// tridiagonal matrix it would be exact and the trace trivial). The
/// level-scheduled multi-RHS triangular sweeps must reproduce the serial
/// per-column reference bit for bit, so this trace is pinned exactly.
#[test]
fn gcrodr30_10_ilu_poisson20_matches_golden() {
    let p = kryst_pde::poisson::poisson2d::<f64>(20, 20);
    let a = p.a;
    let n = a.nrows();
    let ilu = kryst_precond::Ilu0::new(&a).expect("ILU(0) on 2-D Poisson");
    let b = pinned_rhs(n, 42);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = instrumented_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 2000,
            ortho: OrthPath::Classic,
            ..Default::default()
        },
        &ring,
    );
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 1);
    let res = gcrodr::solve(&a, &ilu, &b, &mut x, &opts, &mut ctx);
    assert!(
        res.converged,
        "GCRO-DR(30,10)+ILU on poisson 20x20: {:?}",
        res.final_relres
    );
    let got = Golden::capture("gcrodr", &ring.events(), &res);
    check_against_golden("gcrodr30_10_ilu_poisson20.json", &got);
}
