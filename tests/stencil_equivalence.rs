//! Property tests: matrix-free stencil appliers vs the assembled CSR.
//!
//! `A·X` from [`PoissonStencil`] must be **bit-identical** to the assembled
//! SpMM (the stencil accumulates in the CSR's ascending-column order), and
//! [`ElasticityStencil`] must agree to tight elementwise rounding tolerance
//! (element-order accumulation reassociates the sums), across grid sizes
//! and block widths p ∈ {1, 4, 8}. Thread-count coverage comes from the CI
//! matrix: the whole suite runs under `KRYST_THREADS=1` and `=4`, and the
//! stencil results must not depend on the setting (the Poisson bit-identity
//! assertions prove it). Golden traces stay bit-identical on the default
//! (assembled, f64) path — `tests/golden_traces.rs` runs unchanged.
//!
//! Also covered: the overlapped `DistOp` with a matrix-free kernel swapped
//! in via `with_matrix_free` reproduces the assembled distributed apply.

use kryst_core::{gmres, PrecondSide, SolveOpts};
use kryst_dense::DMat;
use kryst_par::{CommStats, DistOp, IdentityPrecond, LinOp};
use kryst_pde::elasticity::{elasticity3d, ElasticityOpts, PAPER_INCLUSIONS};
use kryst_pde::poisson::{poisson2d, poisson3d};
use kryst_pde::stencil::{ElasticityStencil, PoissonStencil};
use std::sync::Arc;

fn block(n: usize, p: usize) -> DMat<f64> {
    DMat::from_fn(n, p, |i, j| (((i * 17 + j * 29) % 31) as f64) * 0.43 - 6.0)
}

#[test]
fn poisson_stencil_bit_identical_across_grids_and_widths() {
    for &(nx, ny) in &[(7usize, 5usize), (16, 16), (33, 17), (64, 48)] {
        let asm = poisson2d::<f64>(nx, ny).a;
        let st = PoissonStencil::<f64>::dim2(nx, ny);
        let n = nx * ny;
        for p in [1usize, 4, 8] {
            let x = block(n, p);
            let ya = asm.apply(&x);
            let mut ys = DMat::zeros(n, p);
            LinOp::apply(&st, &x, &mut ys);
            for j in 0..p {
                for i in 0..n {
                    assert_eq!(
                        ya[(i, j)].to_bits(),
                        ys[(i, j)].to_bits(),
                        "poisson2d {nx}x{ny} p={p} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn poisson3d_stencil_bit_identical() {
    for &(nx, ny, nz) in &[(5usize, 4usize, 3usize), (9, 7, 5), (12, 12, 8)] {
        let asm = poisson3d::<f64>(nx, ny, nz).a;
        let st = PoissonStencil::<f64>::dim3(nx, ny, nz);
        let n = nx * ny * nz;
        for p in [1usize, 4, 8] {
            let x = block(n, p);
            let ya = asm.apply(&x);
            let mut ys = DMat::zeros(n, p);
            LinOp::apply(&st, &x, &mut ys);
            for j in 0..p {
                for i in 0..n {
                    assert_eq!(
                        ya[(i, j)].to_bits(),
                        ys[(i, j)].to_bits(),
                        "poisson3d {nx}x{ny}x{nz} p={p} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn elasticity_stencil_matches_assembled_across_sizes_and_widths() {
    for &ne in &[3usize, 5] {
        for inclusion in [None, Some(PAPER_INCLUSIONS[2])] {
            let opts = ElasticityOpts {
                ne,
                inclusion,
                ..Default::default()
            };
            let asm = elasticity3d::<f64>(&opts).problem.a;
            let st = ElasticityStencil::<f64>::new(&opts);
            assert_eq!(LinOp::nrows(&st), asm.nrows());
            let n = asm.nrows();
            let scale = asm.inf_norm();
            for p in [1usize, 4, 8] {
                let x = block(n, p);
                let ya = asm.apply(&x);
                let mut ys = DMat::zeros(n, p);
                LinOp::apply(&st, &x, &mut ys);
                for j in 0..p {
                    for i in 0..n {
                        let err = (ya[(i, j)] - ys[(i, j)]).abs();
                        assert!(
                            err < 1e-12 * scale,
                            "elasticity ne={ne} inclusion={} p={p} at ({i},{j}): err {err}",
                            inclusion.is_some()
                        );
                    }
                }
            }
        }
    }
}

/// The distributed operator with a stencil swapped in keeps the overlapped
/// interior/boundary schedule and reproduces the assembled apply bit for
/// bit (Poisson), at every block width.
#[test]
fn distop_matrix_free_reproduces_assembled_apply() {
    let prob = poisson2d::<f64>(32, 24);
    let n = prob.a.nrows();
    let ranks = 4;
    let asm_op = DistOp::new(prob.a.clone(), ranks, CommStats::new_shared());
    let mf_op = DistOp::new(prob.a.clone(), ranks, CommStats::new_shared())
        .with_matrix_free(Arc::new(PoissonStencil::<f64>::dim2(32, 24)));
    assert!(mf_op.is_matrix_free());
    for p in [1usize, 4, 8] {
        let x = block(n, p);
        let mut ya = DMat::zeros(n, p);
        let mut ys = DMat::zeros(n, p);
        asm_op.apply(&x, &mut ya);
        mf_op.apply(&x, &mut ys);
        for j in 0..p {
            for i in 0..n {
                assert_eq!(
                    ya[(i, j)].to_bits(),
                    ys[(i, j)].to_bits(),
                    "p={p} ({i},{j})"
                );
            }
        }
    }
    // And the matrix-free operator streams a constant footprint, not the
    // assembled nnz·(value+index) traffic.
    let mf_bytes = mf_op.bytes_per_apply().unwrap();
    let asm_bytes = asm_op.bytes_per_apply().unwrap();
    assert!(
        mf_bytes * 100 < asm_bytes,
        "matrix-free {mf_bytes} B not ≪ assembled {asm_bytes} B"
    );
}

/// End to end: an unpreconditioned GMRES solve driven through the
/// matrix-free distributed operator converges to the same solution as the
/// assembled one.
#[test]
fn gmres_through_matrix_free_operator_matches_assembled() {
    let prob = poisson2d::<f64>(24, 24);
    let n = prob.a.nrows();
    let asm_op = DistOp::new(prob.a.clone(), 4, CommStats::new_shared());
    let mf_op = DistOp::new(prob.a.clone(), 4, CommStats::new_shared())
        .with_matrix_free(Arc::new(PoissonStencil::<f64>::dim2(24, 24)));
    let b = block(n, 2);
    let opts = SolveOpts {
        rtol: 1e-10,
        side: PrecondSide::Right,
        max_iters: 2000,
        ..Default::default()
    };
    let pc = IdentityPrecond::new(n);
    let mut xa = DMat::zeros(n, 2);
    let mut xs = DMat::zeros(n, 2);
    let ra = gmres::solve(&asm_op, &pc, &b, &mut xa, &opts);
    let rs = gmres::solve(&mf_op, &pc, &b, &mut xs, &opts);
    assert!(ra.converged && rs.converged);
    // Identical operators applied in identical order: the Krylov iterates
    // coincide bit for bit, so iteration counts must too.
    assert_eq!(ra.iterations, rs.iterations);
    for j in 0..2 {
        for i in 0..n {
            assert_eq!(xa[(i, j)].to_bits(), xs[(i, j)].to_bits());
        }
    }
}
