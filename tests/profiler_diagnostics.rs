//! Profiler determinism and convergence-diagnostics integration tests.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Determinism** — enabling the phase profiler must not perturb a solve
//!    in any observable way: the full iteration trace (residuals bit for
//!    bit, communication deltas, orthogonalization backend, breakdown
//!    ranks) and the solution vector are compared between a profiler-off
//!    and a profiler-on run. `SolveOpts::default()` picks the
//!    orthogonalization path from `KRYST_FUSE`, and CI runs this file under
//!    `KRYST_THREADS` ∈ {1, 4} × `KRYST_FUSE` ∈ {0, 1}, so all four
//!    configurations are covered without in-process env juggling.
//! 2. **Diagnostics** — the stagnation detector fires exactly once on the
//!    golden stagnating case (GMRES(30) on the 1-D Laplacian) and stays
//!    silent on a converging run longer than its window; CholQR rank
//!    collapse is reported on a duplicate-column block RHS.
//! 3. **Per-rank reconciliation** — splitting the global communication
//!    counters over ranks via the halo plan reproduces the totals exactly
//!    at P ∈ {2, 4, 8}, and the published imbalance gauges match.

use kryst_core::{gcrodr, gmres, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_obs::{
    diags_of, iteration_events, DiagKind, Event, MetricsRegistry, Profiler, Recorder, RingRecorder,
};
use kryst_par::{per_rank_comm, publish_imbalance, CommStats, DistOp, IdentityPrecond};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};
use std::sync::Arc;

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn pinned_rhs(n: usize, seed: u64) -> DMat<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0))
}

fn ring_opts(base: SolveOpts, ring: &Arc<RingRecorder>) -> SolveOpts {
    SolveOpts {
        stats: Some(CommStats::new_shared()),
        recorder: Some(Arc::clone(ring) as Arc<dyn Recorder>),
        ..base
    }
}

/// Everything observable about a solve except wall-clock times.
fn trace_fingerprint(events: &[Event], x: &DMat<f64>) -> Vec<u64> {
    let mut fp = Vec::new();
    for ev in iteration_events(events) {
        fp.push(ev.cycle as u64);
        fp.push(ev.iter as u64);
        for &r in &ev.per_rhs_residuals {
            fp.push(r.to_bits());
        }
        fp.push(ev.comm.reductions);
        fp.push(ev.comm.reduction_bytes);
        fp.push(ev.comm.fused_parts);
        fp.push(ev.comm.p2p_messages);
        fp.push(ev.comm.flops);
        fp.push(ev.breakdown_rank.map(|r| r as u64 + 1).unwrap_or(0));
        fp.push(ev.orth_backend.len() as u64);
    }
    for j in 0..x.ncols() {
        for &v in x.col(j) {
            fp.push(v.to_bits());
        }
    }
    fp
}

/// The golden GMRES(30) and GCRO-DR(30,10) traces must be bit-identical
/// with the profiler off and on: the profiler only ever reads the clock.
#[test]
fn profiler_on_off_traces_bit_identical() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let prof = Profiler::global();

    let run_gmres = || {
        let ring = Arc::new(RingRecorder::new(1 << 16));
        let opts = ring_opts(
            SolveOpts {
                rtol: 1e-8,
                restart: 30,
                max_iters: 600,
                ..Default::default()
            },
            &ring,
        );
        let mut x = DMat::zeros(n, 1);
        gmres::solve(&a, &id, &b, &mut x, &opts);
        trace_fingerprint(&ring.events(), &x)
    };
    let run_gcrodr = || {
        let ring = Arc::new(RingRecorder::new(1 << 16));
        let opts = ring_opts(
            SolveOpts {
                rtol: 1e-8,
                restart: 30,
                recycle: 10,
                max_iters: 5000,
                ..Default::default()
            },
            &ring,
        );
        let mut ctx = SolverContext::new();
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
        assert!(res.converged);
        trace_fingerprint(&ring.events(), &x)
    };

    prof.set_enabled(false);
    let gmres_off = run_gmres();
    let gcrodr_off = run_gcrodr();
    prof.set_enabled(true);
    prof.reset();
    let gmres_on = run_gmres();
    let gcrodr_on = run_gcrodr();
    prof.set_enabled(false);

    assert_eq!(
        gmres_off, gmres_on,
        "profiler perturbed the GMRES iteration trace"
    );
    assert_eq!(
        gcrodr_off, gcrodr_on,
        "profiler perturbed the GCRO-DR iteration trace"
    );
    // And the enabled run actually measured the instrumented kernels.
    let snap = prof.snapshot();
    for phase in ["spmv", "orth/gram", "small_dense", "recycle_setup"] {
        assert!(
            snap.phases.iter().any(|p| p.name == phase && p.count > 0),
            "phase {phase} not measured"
        );
    }
}

/// The stagnation detector fires exactly once (latched) on the golden
/// stagnating case: unpreconditioned GMRES(30) on the 1-D Laplacian.
#[test]
fn stagnation_diag_fires_on_gmres30_laplace400() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    let id = IdentityPrecond::new(n);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = ring_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1500,
            ..Default::default()
        },
        &ring,
    );
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert!(!res.converged, "this case is the stagnation golden");
    let events = ring.events();
    let stag = diags_of(&events, DiagKind::Stagnation);
    assert_eq!(
        stag.len(),
        1,
        "stagnation diagnostic must fire once (latched)"
    );
    assert!(
        stag[0].value > 0.95,
        "reported ratio {} should show a residual plateau",
        stag[0].value
    );
    assert!(stag[0].detail >= 1, "window size is carried in detail");
    assert!(
        stag[0].iter + stag[0].cycle * 30 >= stag[0].detail,
        "cannot fire before one full window of history"
    );
}

/// No stagnation diagnostic on a converging solve longer than the detector
/// window: unpreconditioned GMRES(30) on convection–diffusion converges in
/// ~144 iterations with a monotone-enough residual.
#[test]
fn no_stagnation_diag_on_converging_convdiff() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let n = a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = ring_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 1000,
            ..Default::default()
        },
        &ring,
    );
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    assert!(res.converged);
    assert!(
        res.iterations > 60,
        "the case must outlast the detector window to be meaningful"
    );
    let events = ring.events();
    assert!(
        diags_of(&events, DiagKind::Stagnation).is_empty(),
        "no stagnation on a converging trajectory"
    );
}

/// A duplicate-column block RHS collapses the initial CholQR rank; GCRO-DR
/// must report the rank-collapse diagnostic on the first iteration of the
/// affected cycle and still converge via the pseudo-block fallback.
#[test]
fn rank_collapse_diag_fires_on_duplicate_rhs_gcrodr() {
    let n = 200;
    let a = laplace1d(n);
    let id = IdentityPrecond::new(n);
    let b1 = pinned_rhs(n, 7);
    let mut b = DMat::zeros(n, 2);
    for i in 0..n {
        let v = b1[(i, 0)];
        b[(i, 0)] = v;
        b[(i, 1)] = v; // identical column → block rank 1
    }
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let opts = ring_opts(
        SolveOpts {
            rtol: 1e-8,
            restart: 30,
            recycle: 10,
            max_iters: 5000,
            ..Default::default()
        },
        &ring,
    );
    let mut ctx = SolverContext::new();
    let mut x = DMat::zeros(n, 2);
    let res = gcrodr::solve(&a, &id, &b, &mut x, &opts, &mut ctx);
    assert!(res.iterations > 0);
    let events = ring.events();
    let collapses = diags_of(&events, DiagKind::RankCollapse);
    assert!(
        !collapses.is_empty(),
        "duplicate columns must trigger a rank-collapse diagnostic"
    );
    let first = collapses[0];
    assert_eq!(first.value, 1.0, "detected rank should be 1 of 2");
    assert_eq!(first.detail, 2, "block width is carried in detail");
}

/// Per-rank attribution of a real solve's counters reconciles exactly with
/// the global snapshot at P ∈ {2, 4, 8}, and the published imbalance gauges
/// agree with the per-rank extrema.
#[test]
fn per_rank_imbalance_reconciles_with_comm_snapshot() {
    let n = 400;
    let a = laplace1d(n);
    let b = pinned_rhs(n, 42);
    for nranks in [2usize, 4, 8] {
        let stats = CommStats::new_shared();
        let dist = DistOp::new(a.clone(), nranks, Arc::clone(&stats));
        let id = IdentityPrecond::new(n);
        let opts = SolveOpts {
            rtol: 1e-8,
            restart: 30,
            max_iters: 120,
            stats: Some(Arc::clone(&stats)),
            ..Default::default()
        };
        let mut x = DMat::zeros(n, 1);
        gmres::solve(&dist, &id, &b, &mut x, &opts);
        let global = stats.snapshot();
        assert!(global.p2p_messages > 0, "P = {nranks}: no halo traffic?");

        let ranks = per_rank_comm(dist.plan(), &global, nranks);
        assert_eq!(ranks.len(), nranks);
        let msg: u64 = ranks.iter().map(|s| s.p2p_messages).sum();
        let bytes: u64 = ranks.iter().map(|s| s.p2p_bytes).sum();
        let flops: u64 = ranks.iter().map(|s| s.flops).sum();
        assert_eq!(msg, global.p2p_messages, "P = {nranks}: message total");
        assert_eq!(bytes, global.p2p_bytes, "P = {nranks}: byte total");
        assert_eq!(flops, global.flops, "P = {nranks}: flop total");
        for s in &ranks {
            assert_eq!(s.reductions, global.reductions, "collectives are copied");
            assert_eq!(s.fused_parts, global.fused_parts);
        }

        let reg = MetricsRegistry::new();
        publish_imbalance(&reg, "solve", &ranks);
        let max = ranks.iter().map(|s| s.p2p_messages).max().unwrap() as f64;
        let min = ranks.iter().map(|s| s.p2p_messages).min().unwrap() as f64;
        let avg = global.p2p_messages as f64 / nranks as f64;
        assert_eq!(reg.gauge("solve_p2p_messages_max").get(), max);
        assert_eq!(reg.gauge("solve_p2p_messages_min").get(), min);
        assert!((reg.gauge("solve_p2p_messages_avg").get() - avg).abs() < 1e-9);
        let text = reg.expose_text();
        assert!(text.contains("solve_p2p_bytes_max"));
        assert!(text.contains("solve_reductions_avg"));
    }
}
