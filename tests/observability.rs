//! The observability invariant, for every solver in `kryst-core`:
//!
//! * the sum of the per-iteration `comm` deltas equals the `SolveEnd`
//!   `comm_total` **and** the raw `CommStats` counters,
//! * the residual histories riding on the events reconstruct
//!   `SolveResult::history` exactly,
//! * begin/end markers carry the right solver name and shape.

use kryst_core::pseudo::{self, PseudoMethod};
use kryst_core::{bcg, cg, gcrodr, gmres, lgmres};
use kryst_core::{PrecondSide, SolveOpts, SolveResult, SolverContext};
use kryst_dense::DMat;
use kryst_obs::{cumulative_comm, history, iteration_events, Event, Recorder, RingRecorder};
use kryst_par::{CommStats, IdentityPrecond};
use kryst_pde::poisson::{paper_rhs_block, poisson2d};
use std::sync::Arc;

struct Run {
    events: Vec<Event>,
    stats: Arc<CommStats>,
    result: Option<SolveResult>,
}

/// Run `solve` with a fresh recorder + counters attached to `opts`.
fn record(opts: &SolveOpts, solve: impl FnOnce(&SolveOpts) -> Option<SolveResult>) -> Run {
    let stats = CommStats::new_shared();
    let ring = Arc::new(RingRecorder::new(65536));
    let opts = SolveOpts {
        stats: Some(Arc::clone(&stats)),
        recorder: Some(ring.clone() as Arc<dyn Recorder>),
        ..opts.clone()
    };
    let result = solve(&opts);
    Run {
        events: ring.events(),
        stats,
        result,
    }
}

/// The invariant every solver must satisfy.
fn check(name: &str, run: &Run) {
    let events = &run.events;
    let begin = events.first().expect("events emitted");
    match begin {
        Event::SolveBegin { solver, .. } => {
            assert_eq!(*solver, name, "begin marker solver name")
        }
        other => panic!("first event must be SolveBegin, got {other:?}"),
    }
    let end = events
        .iter()
        .find_map(|e| match e {
            Event::SolveEnd(e) => Some(e.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("{name}: SolveEnd emitted"));
    assert_eq!(end.solver, name);

    // Iteration deltas tile the solve: their sum IS the solve total IS the
    // counter total (counters are fresh, so no baseline correction needed).
    let cum = cumulative_comm(events);
    assert_eq!(
        cum, end.comm_total,
        "{name}: iteration deltas must tile the solve"
    );
    let snap = run.stats.snapshot().to_delta();
    assert_eq!(
        cum, snap,
        "{name}: event stream must match the raw counters"
    );

    let iters = iteration_events(events);
    assert_eq!(
        iters.len(),
        end.iterations,
        "{name}: iteration count on SolveEnd"
    );

    // The history view reconstructs the solver's own history exactly.
    if let Some(res) = &run.result {
        assert_eq!(
            history(events),
            res.history,
            "{name}: history is a view of the events"
        );
        assert_eq!(res.iterations, iters.len());
        assert_eq!(end.converged, res.converged);
        assert_eq!(end.final_relres, res.final_relres);
    }
}

#[test]
fn gmres_single_rhs() {
    let prob = poisson2d::<f64>(16, 16);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 15,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, 1);
        let r = gmres::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("gmres", &run);
}

#[test]
fn block_gmres() {
    let prob = poisson2d::<f64>(14, 14);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = paper_rhs_block::<f64>(14, 14);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 20,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, b.ncols());
        let r = gmres::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("gmres", &run);
    // Block iteration events carry one residual per RHS.
    let p = b.ncols();
    for ev in iteration_events(&run.events) {
        assert_eq!(ev.per_rhs_residuals.len(), p);
    }
}

#[test]
fn fgmres_flexible() {
    let prob = poisson2d::<f64>(12, 12);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| 1.0 + ((i % 5) as f64));
    let opts = SolveOpts {
        rtol: 1e-8,
        side: PrecondSide::Flexible,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, 1);
        let r = gmres::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("fgmres", &run);
}

#[test]
fn lgmres_augmented() {
    let prob = poisson2d::<f64>(14, 14);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 9) as f64) - 4.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 12,
        recycle: 3,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, 1);
        let r = lgmres::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("lgmres", &run);
}

#[test]
fn cg_spd() {
    let prob = poisson2d::<f64>(16, 16);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 2, |i, j| ((i + j) % 5) as f64 - 2.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        max_iters: 600,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, 2);
        let r = cg::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("cg", &run);
}

#[test]
fn bcg_block() {
    let prob = poisson2d::<f64>(14, 14);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = paper_rhs_block::<f64>(14, 14);
    let opts = SolveOpts {
        rtol: 1e-8,
        max_iters: 600,
        ..Default::default()
    };
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, b.ncols());
        let r = bcg::solve(&prob.a, &id, &b, &mut x, o);
        assert!(r.converged);
        Some(r)
    });
    check("bcg", &run);
}

#[test]
fn gcrodr_with_refresh_and_recycling() {
    let prob = poisson2d::<f64>(16, 16);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let opts = SolveOpts {
        rtol: 1e-9,
        restart: 10,
        recycle: 4,
        max_iters: 600,
        ..Default::default()
    };
    // Cold solve (first-cycle GMRES + eigensolve + deflated cycles).
    let mut ctx = SolverContext::new();
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, 1);
        let r = gcrodr::solve(&prob.a, &id, &b, &mut x, o, &mut ctx);
        assert!(r.converged);
        Some(r)
    });
    check("gcrodr", &run);
    // Warm solve (setup projection path) — system_index advances.
    let b2 = DMat::from_fn(n, 1, |i, _| ((i % 4) as f64) - 1.5);
    let run2 = record(&opts, |o| {
        let mut x = DMat::zeros(n, 1);
        let r = gcrodr::solve(&prob.a, &id, &b2, &mut x, o, &mut ctx);
        assert!(r.converged);
        Some(r)
    });
    check("gcrodr", &run2);
    match run2.events.first() {
        Some(Event::SolveBegin { system_index, .. }) => assert_eq!(*system_index, 1),
        other => panic!("unexpected first event {other:?}"),
    }
}

#[test]
fn block_gcrodr() {
    let prob = poisson2d::<f64>(14, 14);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = paper_rhs_block::<f64>(14, 14);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 12,
        recycle: 3,
        max_iters: 600,
        ..Default::default()
    };
    let mut ctx = SolverContext::new();
    let run = record(&opts, |o| {
        let mut x = DMat::zeros(n, b.ncols());
        let r = gcrodr::solve(&prob.a, &id, &b, &mut x, o, &mut ctx);
        assert!(r.converged);
        Some(r)
    });
    check("gcrodr", &run);
}

#[test]
fn pseudo_block_gmres_and_gcrodr() {
    let prob = poisson2d::<f64>(12, 12);
    let n = prob.a.nrows();
    let id = IdentityPrecond::new(n);
    let b = paper_rhs_block::<f64>(12, 12);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 15,
        ..Default::default()
    };
    for (method, name) in [
        (PseudoMethod::Gmres, "pseudo-gmres"),
        (PseudoMethod::GcroDr, "pseudo-gcrodr"),
    ] {
        let run = record(&opts, |o| {
            let mut x = DMat::zeros(n, b.ncols());
            let r = pseudo::solve(&prob.a, &id, &b, &mut x, o, method, None);
            assert!(r.converged);
            None // PseudoResult has per-RHS histories, not one SolveResult
        });
        check(name, &run);
        // The fused event stream shows one residual per RHS per iteration.
        for ev in iteration_events(&run.events) {
            assert_eq!(ev.per_rhs_residuals.len(), b.ncols());
        }
    }
}
