//! Iterative-refinement correctness of mixed-precision preconditioning.
//!
//! The f32-storage ILU(0)/AMG variants are *inexact* preconditioners; the
//! flexible outer methods (FGMRES, GCRO-DR with flexible preconditioning)
//! must still drive the **f64** residual to the same outer tolerance as the
//! all-f64 golden runs, at an iteration count within +15%. The operator is
//! the paper's Fig. 7 benchmark: 2-D convection–diffusion with first-order
//! upwind convection.
//!
//! The assertions are precision-explicit (`with_precision`), so this suite
//! passes identically with `KRYST_PRECOND_F32` set or unset; the env knob
//! is exercised separately through `SolveOpts::precond_precision`.

use kryst_core::{gcrodr, gmres, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::{PrecondOp, PrecondPrecision};
use kryst_precond::{Amg, AmgOpts, Ilu0, SmootherKind};
use kryst_sparse::{Coo, Csr};

/// The Fig. 7 benchmark operator (same builder as `tests/comm_model.rs`).
fn convdiff2d(nx: usize, eps: f64, bx: f64, by: f64) -> Csr<f64> {
    let n = nx * nx;
    let h = 1.0 / (nx as f64 + 1.0);
    let mut c = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let row = idx(i, j);
            c.push(row, row, 4.0 * eps / (h * h) + (bx.abs() + by.abs()) / h);
            if i > 0 {
                c.push(row, idx(i - 1, j), -eps / (h * h) - bx.max(0.0) / h);
            }
            if i + 1 < nx {
                c.push(row, idx(i + 1, j), -eps / (h * h) + bx.min(0.0) / h);
            }
            if j > 0 {
                c.push(row, idx(i, j - 1), -eps / (h * h) - by.max(0.0) / h);
            }
            if j + 1 < nx {
                c.push(row, idx(i, j + 1), -eps / (h * h) + by.min(0.0) / h);
            }
        }
    }
    c.to_csr()
}

fn rhs_block(n: usize, p: usize) -> DMat<f64> {
    DMat::from_fn(n, p, |i, j| (((i * 7 + j * 13) % 19) as f64) - 9.0)
}

fn true_relres(a: &Csr<f64>, b: &DMat<f64>, x: &DMat<f64>) -> f64 {
    let mut r = a.apply(x);
    r.axpy(-1.0, b);
    let mut worst = 0.0f64;
    for l in 0..b.ncols() {
        worst = worst.max(r.col_norm(l) / b.col_norm(l).max(1e-300));
    }
    worst
}

/// Golden vs mixed run of one flexible solver/preconditioner pair: both
/// must converge to the same f64 tolerance, the mixed run within +15%
/// of the golden iteration count, and the final *true* f64 residuals of
/// both must actually sit under the tolerance.
fn assert_mixed_tracks_golden(
    a: &Csr<f64>,
    make_pc: impl Fn(PrecondPrecision) -> Box<dyn PrecondOp<f64>>,
    p: usize,
    recycle: bool,
    what: &str,
) {
    let n = a.nrows();
    let b = rhs_block(n, p);
    let rtol = 1e-8;
    let opts = SolveOpts {
        rtol,
        side: PrecondSide::Flexible,
        max_iters: 2000,
        ..Default::default()
    };
    let run = |pc: &dyn PrecondOp<f64>| {
        let mut x = DMat::zeros(n, p);
        let res = if recycle {
            let mut ctx = SolverContext::new();
            gcrodr::solve(a, pc, &b, &mut x, &opts, &mut ctx)
        } else {
            gmres::solve(a, pc, &b, &mut x, &opts)
        };
        (res, true_relres(a, &b, &x))
    };
    let (gold, gold_rr) = run(&*make_pc(PrecondPrecision::Full));
    let (mixed, mixed_rr) = run(&*make_pc(PrecondPrecision::Single));
    assert!(gold.converged, "{what}: golden f64 run did not converge");
    assert!(mixed.converged, "{what}: mixed run did not converge");
    assert!(
        gold_rr < 20.0 * rtol,
        "{what}: golden true residual {gold_rr}"
    );
    assert!(
        mixed_rr < 20.0 * rtol,
        "{what}: mixed true residual {mixed_rr} — the f32 preconditioner may not limit the f64 outer accuracy"
    );
    let bound = (gold.iterations as f64 * 1.15).ceil() as usize;
    assert!(
        mixed.iterations <= bound,
        "{what}: mixed took {} iterations vs golden {} (+15% bound {bound})",
        mixed.iterations,
        gold.iterations
    );
}

#[test]
fn fgmres_ilu_mixed_matches_golden_iterations() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    for p in [1usize, 4] {
        assert_mixed_tracks_golden(
            &a,
            |prec| Box::new(Ilu0::with_precision(&a, prec).expect("ILU(0) factors")),
            p,
            false,
            "fgmres+ilu0",
        );
    }
}

#[test]
fn gcrodr_ilu_mixed_matches_golden_iterations() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    assert_mixed_tracks_golden(
        &a,
        |prec| Box::new(Ilu0::with_precision(&a, prec).expect("ILU(0) factors")),
        1,
        true,
        "gcrodr+ilu0",
    );
}

#[test]
fn fgmres_amg_mixed_matches_golden_iterations() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let amg_opts = AmgOpts {
        smoother: SmootherKind::Jacobi {
            omega: 0.67,
            iters: 2,
        },
        ..Default::default()
    };
    assert_mixed_tracks_golden(
        &a,
        |prec| Box::new(Amg::with_precision(&a, None, &amg_opts, prec)),
        1,
        false,
        "fgmres+amg",
    );
}

#[test]
fn gcrodr_amg_mixed_matches_golden_iterations() {
    let a = convdiff2d(32, 0.001, 1.0, 0.3);
    let amg_opts = AmgOpts {
        smoother: SmootherKind::Jacobi {
            omega: 0.67,
            iters: 2,
        },
        ..Default::default()
    };
    assert_mixed_tracks_golden(
        &a,
        |prec| Box::new(Amg::with_precision(&a, None, &amg_opts, prec)),
        1,
        true,
        "gcrodr+amg",
    );
}

/// The `SolveOpts::precond_precision` carrier knob: setup code that reads
/// it gets whichever precision the environment selected, and the solve
/// converges either way — this is the test the `KRYST_PRECOND_F32=1` CI
/// leg flips to the f32 path.
#[test]
fn carrier_knob_selects_precision_and_solves() {
    let a = convdiff2d(24, 0.01, 1.0, 0.0);
    let n = a.nrows();
    let opts = SolveOpts {
        rtol: 1e-8,
        side: PrecondSide::Flexible,
        ..Default::default()
    };
    let ilu = Ilu0::with_precision(&a, opts.precond_precision).expect("ILU(0) factors");
    assert_eq!(ilu.precision(), opts.precond_precision);
    let b = rhs_block(n, 2);
    let mut x = DMat::zeros(n, 2);
    let res = gmres::solve(&a, &ilu, &b, &mut x, &opts);
    assert!(res.converged, "carrier-knob solve did not converge");
    assert!(true_relres(&a, &b, &x) < 2e-7);
}
