//! Preconditioner behaviour at integration scale: AMG hierarchies, Schwarz
//! variants, and the trade-offs the paper measures.

use kryst_core::{gmres, PrecondSide, SolveOpts};
use kryst_dense::DMat;
use kryst_pde::elasticity::{elasticity3d, ElasticityOpts};
use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
use kryst_pde::poisson::poisson2d;
use kryst_precond::{Amg, AmgOpts, Schwarz, SchwarzOpts, SchwarzVariant, SmootherKind};
use kryst_scalar::C64;
use kryst_sparse::partition::partition_rcb;

#[test]
fn amg_iteration_count_is_grid_independent() {
    // The multigrid signature: iterations stay O(1) as the grid refines.
    let mut counts = Vec::new();
    for nx in [16usize, 32, 64] {
        let prob = poisson2d::<f64>(nx, nx);
        let n = prob.a.nrows();
        let amg = Amg::new(&prob.a, prob.near_nullspace.as_ref(), &AmgOpts::default());
        let b = DMat::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-8,
            ..Default::default()
        };
        let res = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
        assert!(res.converged, "nx = {nx}");
        counts.push(res.iterations);
    }
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max <= 2 * min + 6, "not grid-independent: {counts:?}");
    assert!(max <= 30, "AMG too weak: {counts:?}");
}

#[test]
fn smoother_strength_trades_setup_for_iterations() {
    // §IV-B's observation: a cheaper cycle (1 smoothing step) needs more
    // outer iterations than a richer one (3 steps).
    let prob = poisson2d::<f64>(48, 48);
    let n = prob.a.nrows();
    let b = DMat::from_fn(n, 1, |i, _| (((i * 3) % 13) as f64) - 6.0);
    let mut iters = Vec::new();
    for smoothing in [3usize, 1] {
        let amg = Amg::new(
            &prob.a,
            prob.near_nullspace.as_ref(),
            &AmgOpts {
                smoother: SmootherKind::Gmres { iters: smoothing },
                ..Default::default()
            },
        );
        let mut x = DMat::zeros(n, 1);
        let opts = SolveOpts {
            rtol: 1e-8,
            side: PrecondSide::Flexible,
            ..Default::default()
        };
        let res = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
        assert!(res.converged);
        iters.push(res.iterations);
    }
    assert!(
        iters[1] > iters[0],
        "GMRES(1) {} !> GMRES(3) {}",
        iters[1],
        iters[0]
    );
}

#[test]
fn rigid_body_modes_improve_elasticity_amg() {
    let prob = elasticity3d::<f64>(&ElasticityOpts {
        ne: 6,
        ..Default::default()
    });
    let a = &prob.problem.a;
    let n = a.nrows();
    let b = DMat::from_fn(n, 1, |i, _| prob.rhs[i]);
    let opts = SolveOpts {
        rtol: 1e-8,
        max_iters: 400,
        ..Default::default()
    };
    let mut iters = Vec::new();
    for use_rbm in [true, false] {
        let ns = if use_rbm {
            prob.problem.near_nullspace.as_ref()
        } else {
            None
        };
        let amg = Amg::new(
            a,
            ns,
            &AmgOpts {
                smoother: SmootherKind::Chebyshev { degree: 2 },
                ..Default::default()
            },
        );
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(a, &amg, &b, &mut x, &opts);
        assert!(res.converged, "use_rbm = {use_rbm}");
        iters.push(res.iterations);
    }
    assert!(
        iters[0] < iters[1],
        "RBM near-nullspace must help: {} !< {}",
        iters[0],
        iters[1]
    );
}

#[test]
fn overlap_improves_schwarz_convergence() {
    let prob = poisson2d::<f64>(32, 32);
    let n = prob.a.nrows();
    let part = partition_rcb(&prob.coords, 8);
    let b = DMat::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 200,
        max_iters: 200,
        ..Default::default()
    };
    let mut iters = Vec::new();
    for overlap in [1usize, 3] {
        let ras = Schwarz::new(
            &prob.a,
            &part,
            &SchwarzOpts {
                variant: SchwarzVariant::Ras,
                overlap,
                impedance: 0.0,
            },
        );
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&prob.a, &ras, &b, &mut x, &opts);
        assert!(res.converged, "overlap = {overlap}");
        iters.push(res.iterations);
    }
    assert!(
        iters[1] < iters[0],
        "overlap 3 ({}) !< overlap 1 ({})",
        iters[1],
        iters[0]
    );
}

#[test]
fn more_subdomains_more_iterations_one_level_schwarz() {
    // One-level methods are not scalable — iteration growth with N is the
    // reason the paper's Fig. 7 solve fraction grows.
    let prob = poisson2d::<f64>(32, 32);
    let n = prob.a.nrows();
    let b = DMat::from_fn(n, 1, |i, _| ((i % 4) as f64) - 1.5);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 300,
        max_iters: 300,
        ..Default::default()
    };
    let mut iters = Vec::new();
    for nsub in [2usize, 16] {
        let part = partition_rcb(&prob.coords, nsub);
        let ras = Schwarz::new(
            &prob.a,
            &part,
            &SchwarzOpts {
                variant: SchwarzVariant::Ras,
                overlap: 2,
                impedance: 0.0,
            },
        );
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&prob.a, &ras, &b, &mut x, &opts);
        assert!(res.converged, "nsub = {nsub}");
        iters.push(res.iterations);
    }
    assert!(
        iters[1] > iters[0],
        "N = 16 ({}) !> N = 2 ({})",
        iters[1],
        iters[0]
    );
}

#[test]
fn fig4_shape_oras_beats_asm_and_amg_on_maxwell() {
    // The Fig. 4 statement as a test: iterations(ORAS) < iterations(ASM)
    // and AMG fails or is far slower on the indefinite complex system.
    let params = MaxwellParams::chamber_hard(10);
    let (prob, geom) = maxwell3d(&params);
    let n = prob.a.nrows();
    let part = partition_rcb(&prob.coords, 8);
    let b = antenna_ring_rhs(&geom, &params, 1, 0.3, 0.5);
    let opts = SolveOpts {
        rtol: 1e-6,
        restart: 200,
        max_iters: 200,
        ..Default::default()
    };

    let oras = Schwarz::<C64>::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Oras,
            overlap: 2,
            impedance: params.omega,
        },
    );
    let mut x = DMat::<C64>::zeros(n, 1);
    let res_oras = gmres::solve(&prob.a, &oras, &b, &mut x, &opts);
    assert!(
        res_oras.converged,
        "ORAS must converge: {:?}",
        res_oras.final_relres
    );

    let asm = Schwarz::<C64>::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Asm,
            overlap: 1,
            impedance: 0.0,
        },
    );
    let mut x = DMat::<C64>::zeros(n, 1);
    let res_asm = gmres::solve(&prob.a, &asm, &b, &mut x, &opts);

    let amg = Amg::new(
        &prob.a,
        None,
        &AmgOpts {
            smoother: SmootherKind::Jacobi {
                omega: 0.6,
                iters: 2,
            },
            ..Default::default()
        },
    );
    let mut x = DMat::<C64>::zeros(n, 1);
    let res_amg = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);

    let oras_iters = res_oras.iterations;
    let asm_iters = if res_asm.converged {
        res_asm.iterations
    } else {
        usize::MAX
    };
    let amg_iters = if res_amg.converged {
        res_amg.iterations
    } else {
        usize::MAX
    };
    assert!(
        oras_iters < asm_iters && oras_iters < amg_iters,
        "ORAS {oras_iters} vs ASM {:?} vs AMG {:?}",
        res_asm.converged.then_some(res_asm.iterations),
        res_amg.converged.then_some(res_amg.iterations)
    );
}
