//! Cross-rank distributed tracing, end to end: per-rank span streams
//! gathered over both transport backends, merged into one rank×time
//! timeline, exported as a Chrome trace, and analyzed for stragglers.
//!
//! The trace flag is process-global, so every test that flips it serializes
//! through [`with_tracing`]. Socket runs re-exec this test binary as worker
//! processes (the `run_spmd` worker hook keys on the libtest thread name);
//! `run_socket` forwards `KRYST_TRACE=1` to workers whenever tracing was
//! enabled at runtime, so worker logical clocks agree with the parent's.

use kryst_bench::tracedemo::skewed_workload;
use kryst_core::{gmres, SolveOpts};
use kryst_dense::DMat;
use kryst_obs::json::JsonValue;
use kryst_obs::span::TraceKind;
use kryst_obs::timeline::Timeline;
use kryst_obs::MetricsRegistry;
use kryst_par::{
    gather_timeline, run_spmd, IdentityPrecond, SpmdRun, Transport, TransportError, TransportKind,
};
use kryst_rt::rng::Rng64;
use kryst_sparse::{Coo, Csr};
use std::sync::Mutex;

/// Serializes every test that touches the process-global trace flag.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with tracing forced to `on`, restoring the previous state.
fn with_tracing<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let was = kryst_obs::trace_enabled();
    kryst_obs::set_trace_enabled(on);
    let out = f();
    kryst_obs::set_trace_enabled(was);
    out
}

/// The workload closure every timeline test runs: the skewed demo steps,
/// then the gather; rank 0 ships the merged timeline out as its result.
fn traced_run(kind: TransportKind, nranks: usize, steps: usize) -> Timeline {
    let run = run_spmd(kind, nranks, move |t| {
        let tl = skewed_workload(t, steps)?;
        Ok(tl.map(|tl| tl.encode()).unwrap_or_default())
    })
    .unwrap_or_else(|e| panic!("{} P={nranks} run: {e}", kind.name()));
    Timeline::decode(&run.results[0]).expect("rank 0 returns a well-formed timeline")
}

/// Satellite 3: the merged timeline is span-for-span identical between the
/// channel and socket backends — same kinds, logical clocks, wire deltas,
/// and details on every rank — with only wall-clock timestamps free to
/// differ.
#[test]
fn merged_timeline_identical_across_backends_modulo_timestamps() {
    with_tracing(true, || {
        for p in [2usize, 4, 8] {
            let chan = traced_run(TransportKind::Channel, p, 3);
            let sock = traced_run(TransportKind::Socket, p, 3);
            assert_eq!(chan.nranks, p);
            assert_eq!(sock.nranks, p);
            assert_eq!(chan.streams.len(), p, "P={p}: channel streams");
            assert_eq!(sock.streams.len(), p, "P={p}: socket streams");
            assert!(chan.missing.is_empty() && sock.missing.is_empty());
            for (cs, ss) in chan.streams.iter().zip(&sock.streams) {
                assert_eq!(cs.rank, ss.rank);
                assert_eq!(
                    cs.spans.len(),
                    ss.spans.len(),
                    "P={p} rank {}: span count",
                    cs.rank
                );
                for (i, (a, b)) in cs.spans.iter().zip(&ss.spans).enumerate() {
                    let key = |s: &kryst_obs::TraceSpan| (s.kind, s.seq, s.bytes, s.msgs, s.detail);
                    assert_eq!(key(a), key(b), "P={p} rank {} span {i}", cs.rank);
                }
            }
        }
    });
}

/// The gather rides the transport control plane, which is excluded from the
/// wire counters: a traced run reports exactly the wire traffic of an
/// untraced one.
#[test]
fn gather_does_not_perturb_wire_counters() {
    let run = |on: bool| {
        with_tracing(on, || {
            run_spmd(TransportKind::Channel, 4, |t| {
                skewed_workload(t, 2)?;
                Ok(Vec::new())
            })
            .expect("channel run")
        })
    };
    let traced = run(true);
    let bare = run(false);
    assert_eq!(traced.messages, bare.messages, "wire message totals");
    for (r, (a, b)) in traced.wire.iter().zip(&bare.wire).enumerate() {
        assert_eq!(a.bytes_sent, b.bytes_sent, "rank {r} bytes_sent");
        assert_eq!(a.msgs_sent, b.msgs_sent, "rank {r} msgs_sent");
    }
}

fn laplace1d(n: usize) -> Csr<f64> {
    let mut c = Coo::new(n, n);
    for i in 0..n {
        c.push(i, i, 2.0);
        if i > 0 {
            c.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            c.push(i, i + 1, -1.0);
        }
    }
    c.to_csr()
}

/// Golden-trace fingerprint of a pinned GMRES solve: iteration count,
/// convergence flag, and the positional bit-checksum of the full residual
/// history.
fn solve_fingerprint() -> Vec<f64> {
    let n = 400;
    let a = laplace1d(n);
    let mut rng = Rng64::seed_from_u64(42);
    let b = DMat::from_fn(n, 1, |_, _| rng.gen_range(-1.0, 1.0));
    let id = IdentityPrecond::new(n);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        max_iters: 90,
        ..Default::default()
    };
    let mut x = DMat::zeros(n, 1);
    let res = gmres::solve(&a, &id, &b, &mut x, &opts);
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for row in &res.history {
        for v in row {
            acc = acc.rotate_left(7) ^ v.to_bits();
        }
    }
    vec![
        res.iterations as f64,
        if res.converged { 1.0 } else { 0.0 },
        (acc >> 32) as f64,
        (acc & 0xffff_ffff) as f64,
    ]
}

/// Tracing must never move a float: the golden solver trace is bit-identical
/// with tracing on and off, on both backends.
#[test]
fn golden_traces_bit_identical_with_tracing_on_and_off() {
    let f = |t: &dyn Transport| -> Result<Vec<f64>, TransportError> {
        let fp = solve_fingerprint();
        // Touch the traced collective path too, so spans are actually
        // recorded when the flag is on.
        let mut sum = fp.clone();
        let mut scratch = Vec::new();
        kryst_par::collective::all_reduce_sum(t, &mut sum, &mut scratch)?;
        let _ = gather_timeline(t)?;
        Ok(fp)
    };
    let mut runs: Vec<(String, SpmdRun)> = Vec::new();
    for on in [false, true] {
        for kind in [TransportKind::Channel, TransportKind::Socket] {
            let run = with_tracing(on, || run_spmd(kind, 2, f).expect("solve run"));
            runs.push((format!("{} tracing={on}", kind.name()), run));
        }
    }
    let (base_label, base) = &runs[0];
    for (label, run) in &runs[1..] {
        for (r, (ra, rb)) in base.results.iter().zip(&run.results).enumerate() {
            assert_eq!(ra.len(), rb.len(), "{base_label} vs {label}: rank {r}");
            for (i, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{base_label} vs {label}: rank {r} element {i}"
                );
            }
        }
    }
}

/// Acceptance: at socket P=4 every collective span is attributed to all
/// four participating ranks, and the Chrome export carries one track per
/// rank plus flow links tying each collective's member slices together.
#[test]
fn chrome_export_attributes_collectives_at_socket_p4() {
    let path = std::env::temp_dir().join("kryst_trace_chrome_test.json");
    let _ = std::fs::remove_file(&path);
    let tl = with_tracing(true, || {
        std::env::set_var("KRYST_TRACE_TIMELINE", &path);
        let tl = traced_run(TransportKind::Socket, 4, 3);
        std::env::remove_var("KRYST_TRACE_TIMELINE");
        tl
    });
    let groups = tl.collectives();
    assert!(!groups.is_empty(), "collectives recorded");
    for g in &groups {
        assert_eq!(
            g.members.len(),
            4,
            "collective {}:{} must have all 4 ranks",
            g.kind.name(),
            g.seq
        );
        let ranks: Vec<usize> = g.members.iter().map(|m| m.0).collect();
        assert_eq!(ranks, [0, 1, 2, 3], "members in rank order");
    }

    // The export written as a side effect of the gather (rank 0 runs in
    // this process on the socket backend).
    let text = std::fs::read_to_string(&path).expect("KRYST_TRACE_TIMELINE written");
    let v = JsonValue::parse(&text).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    fn ph(e: &JsonValue) -> Option<&str> {
        e.get("ph").and_then(JsonValue::as_str)
    }
    let tracks = events
        .iter()
        .filter(|e| {
            ph(e) == Some("M") && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
        })
        .count();
    assert_eq!(tracks, 4, "one thread-name track per rank");
    let flow_starts = events.iter().filter(|e| ph(e) == Some("s")).count();
    let flow_binds = events.iter().filter(|e| ph(e) == Some("f")).count();
    assert_eq!(flow_starts, groups.len(), "one flow start per collective");
    assert_eq!(
        flow_binds,
        groups.len() * 3,
        "one flow bind per non-origin member"
    );
    let _ = std::fs::remove_file(&path);
}

/// Satellite 3, dead-peer half: a socket worker dying before the gather
/// yields a *partial* timeline on rank 0 (the dead rank listed in
/// `missing`), not a panic — even though the overall run still surfaces the
/// worker death as a typed error.
#[test]
fn socket_gather_survives_injected_peer_death() {
    let out = std::env::temp_dir().join("kryst_trace_partial_test.json");
    let _ = std::fs::remove_file(&out);
    let path = out.clone();
    let err = with_tracing(true, || {
        run_spmd(TransportKind::Socket, 3, move |t| {
            {
                let _sp = kryst_obs::traced(TraceKind::PrecondApply);
                std::hint::black_box((0..500).map(|i| i as f64).sum::<f64>());
            }
            if t.rank() == 1 {
                // Dies without a word: no gather frame, no exit handshake.
                std::process::exit(3);
            }
            if let Some(tl) = gather_timeline(t)? {
                std::fs::write(&path, tl.to_json()).expect("persist partial timeline");
            }
            Ok(Vec::new())
        })
        .expect_err("worker death must surface as a typed error")
    });
    match &err {
        TransportError::RankFailed { rank, .. } => assert_eq!(*rank, 1),
        TransportError::PeerClosed { .. } => {}
        other => panic!("expected RankFailed/PeerClosed, got {other}"),
    }
    let text = std::fs::read_to_string(&out).expect("rank 0 persisted the partial timeline");
    let tl = Timeline::from_json(&text).expect("partial timeline parses");
    assert_eq!(tl.nranks, 3);
    assert_eq!(tl.missing, vec![1], "dead rank recorded as missing");
    assert_eq!(tl.streams.len(), 2, "surviving streams gathered");
    for s in &tl.streams {
        assert_eq!(s.spans.len(), 1, "rank {}: its one local span", s.rank);
        assert_eq!(s.spans[0].kind, TraceKind::PrecondApply);
    }
    let _ = std::fs::remove_file(&out);
}

/// Acceptance: the per-rank wait-behind-slowest the `kryst_trace` analysis
/// prints and the registry's measured-imbalance gauges come from the same
/// report — their sums must agree within 5% (they are exactly equal by
/// construction).
#[test]
fn wait_behind_slowest_matches_registry_within_5_percent() {
    let tl = with_tracing(true, || traced_run(TransportKind::Channel, 4, 6));
    let rep = tl.imbalance();
    assert!(rep.collectives > 0, "collectives analyzed");
    let reg = MetricsRegistry::new();
    rep.publish(&reg, "trace");
    let gauge_sum: f64 = (0..4)
        .map(|r| reg.gauge(&format!("trace_wait_ns_rank{r}")).get())
        .sum();
    let report_sum = rep.total_wait_ns() as f64;
    assert!(
        (gauge_sum - report_sum).abs() <= 0.05 * report_sum.max(1.0),
        "registry sum {gauge_sum} vs report sum {report_sum}"
    );
    assert_eq!(
        reg.gauge("trace_wait_ns_total").get(),
        report_sum,
        "total gauge"
    );
}

/// With tracing disabled (the default), a full workload records nothing:
/// the gathered timeline is empty on every rank.
#[test]
fn tracing_off_by_default_gathers_empty_timeline() {
    let tl = with_tracing(false, || traced_run(TransportKind::Channel, 4, 2));
    assert_eq!(tl.streams.len(), 4);
    for s in &tl.streams {
        assert!(s.spans.is_empty(), "rank {}: no spans when off", s.rank);
        assert_eq!(s.dropped, 0);
    }
}
