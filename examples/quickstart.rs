//! Quickstart: solve a sequence of linear systems with GMRES, then with
//! GCRO-DR, and watch recycling cut the iteration counts — the
//! artifact-description experiment of the paper (`ex32` with
//! `-hpddm_krylov_method gcrodr -hpddm_recycle 10 -hpddm_recycle_same_system`).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use kryst_core::{gcrodr, gmres, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::poisson::{paper_rhs_sequence, poisson2d};
use kryst_precond::Jacobi;
use std::time::Instant;

fn main() {
    // 1. Build a problem: 2-D Poisson, like PETSc's ex32.
    let (nx, ny) = (60, 60);
    let prob = poisson2d::<f64>(nx, ny);
    let n = prob.a.nrows();
    println!("Poisson {nx}×{ny}: n = {n}, nnz = {}", prob.a.nnz());

    // 2. A simple preconditioner (point Jacobi, like the artifact's default
    //    PETSc setting) — or use `IdentityPrecond` for none, or the AMG /
    //    Schwarz preconditioners from `kryst-precond` for the full setup.
    let jac = Jacobi::new(&prob.a, 1.0);
    let _unpreconditioned = IdentityPrecond::new(n);

    // 3. Four right-hand sides, solved one after another (a time-dependent
    //    workload: the operator never changes).
    let rhss = paper_rhs_sequence::<f64>(nx, ny);
    let opts = SolveOpts {
        rtol: 1e-6,
        restart: 30,
        recycle: 10,
        same_system: true,
        ..Default::default()
    };

    println!("\nPETSc-style baseline (GMRES)");
    let mut total_it = 0;
    let mut total_t = 0.0;
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t0 = Instant::now();
        let res = gmres::solve(&prob.a, &jac, &b, &mut x, &opts);
        let dt = t0.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>8} {:>10.6}", i + 1, res.iterations, dt);
        total_it += res.iterations;
        total_t += dt;
    }
    println!("------------------------\n   {total_it:>8} {total_t:>10.6}");

    println!("\nHPDDM-style recycling (GCRO-DR)");
    let mut ctx = SolverContext::new();
    let mut total_it = 0;
    let mut total_t = 0.0;
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t0 = Instant::now();
        let res = gcrodr::solve(&prob.a, &jac, &b, &mut x, &opts, &mut ctx);
        let dt = t0.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>8} {:>10.6}", i + 1, res.iterations, dt);
        total_it += res.iterations;
        total_t += dt;
    }
    println!("------------------------\n   {total_it:>8} {total_t:>10.6}");
    println!("\nGCRO-DR recycles the Krylov subspace across the sequence — the");
    println!("first solve pays for the deflation space, every later solve starts");
    println!("from it (paper artifact output: 288 vs 147 total iterations).");
}
