//! Implicit heat stepping — the non-variable sequence of §III-B.
//!
//! Backward Euler on `∂u/∂t − Δu = f` gives one operator and a new
//! right-hand side per step; `same_system` recycling makes every step after
//! the first cheap (no distributed QR, no eigenproblem at restarts).
//!
//! Usage: `cargo run --release --example heat_stepping [n] [steps]`

use kryst_core::{gcrodr, gmres, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_par::IdentityPrecond;
use kryst_pde::heat::HeatSequence;
use std::time::Instant;

fn main() {
    let n1d = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let steps = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("implicit heat, {n1d}×{n1d} grid, {steps} time steps, dt = 0.05");

    let opts = SolveOpts {
        rtol: 1e-9,
        restart: 30,
        recycle: 10,
        same_system: true,
        ..Default::default()
    };

    // GMRES per step.
    let mut seq = HeatSequence::<f64>::new(n1d, n1d, 0.05);
    let n = seq.n();
    let id = IdentityPrecond::new(n);
    let mut g_it = 0;
    let t0 = Instant::now();
    for _ in 0..steps {
        let b = seq.next_rhs();
        let bm = DMat::from_col_major(n, 1, b);
        let mut x = DMat::zeros(n, 1);
        let res = gmres::solve(&seq.a, &id, &bm, &mut x, &opts);
        assert!(res.converged);
        g_it += res.iterations;
        seq.advance(x.col(0));
    }
    let g_t = t0.elapsed().as_secs_f64();
    println!("GMRES(30):            {g_it:>5} total iterations, {g_t:.3}s");

    // GCRO-DR with same_system recycling.
    let mut seq = HeatSequence::<f64>::new(n1d, n1d, 0.05);
    let mut ctx = SolverContext::new();
    let mut r_it = 0;
    let t0 = Instant::now();
    for _ in 0..steps {
        let b = seq.next_rhs();
        let bm = DMat::from_col_major(n, 1, b);
        let mut x = DMat::zeros(n, 1);
        let res = gcrodr::solve(&seq.a, &id, &bm, &mut x, &opts, &mut ctx);
        assert!(res.converged);
        r_it += res.iterations;
        seq.advance(x.col(0));
    }
    let r_t = t0.elapsed().as_secs_f64();
    println!("GCRO-DR(30,10), same_system: {r_it:>5} total iterations, {r_t:.3}s");
    println!(
        "\nrecycling saves {:.0}% of the iterations across the time loop",
        (1.0 - r_it as f64 / g_it as f64) * 100.0
    );
}
