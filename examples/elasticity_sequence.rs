//! `ex56` analogue — the paper's §IV-C workload at laptop scale.
//!
//! Four *varying* 3-D elasticity systems (a spherical inclusion moves and
//! softens/hardens between solves), GAMG with rigid-body near-nullspace and
//! a CG(4) smoother (nonlinear ⇒ flexible methods). GCRO-DR must refresh
//! its recycle space with the distributed QR of `A_i·U_k` (Fig. 1 lines
//! 4–6) because the operator changes.
//!
//! Usage: `cargo run --release --example elasticity_sequence [ne]`

use kryst_core::{gcrodr, gmres, PrecondSide, RecycleStrategy, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::elasticity::paper_sequence;
use kryst_precond::{Amg, AmgOpts, SmootherKind};
use std::time::Instant;

fn main() {
    let ne = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let systems = paper_sequence::<f64>(ne);
    let n = systems[0].problem.a.nrows();
    println!(
        "elasticity ne = {ne} (n = {n} dofs), 4 varying systems, GAMG + CG(4) smoother, rtol 1e-8"
    );
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Flexible,
        recycle_strategy: RecycleStrategy::A,
        same_system: false, // the operator varies between systems
        ..Default::default()
    };
    let amg_opts = AmgOpts {
        smoother: SmootherKind::Cg { iters: 4 },
        ..Default::default()
    };

    println!("\nPETSc (FGMRES)");
    let mut fg = (0usize, 0.0f64);
    for (i, sys) in systems.iter().enumerate() {
        let amg = Amg::new(
            &sys.problem.a,
            sys.problem.near_nullspace.as_ref(),
            &amg_opts,
        );
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t = Instant::now();
        let res = gmres::solve(&sys.problem.a, &amg, &b, &mut x, &opts);
        let dt = t.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>6} {:>10.6}", i + 1, res.iterations, dt);
        fg.0 += res.iterations;
        fg.1 += dt;
    }
    println!("------------------------\n   {:>6} {:>10.6}", fg.0, fg.1);

    println!("\nHPDDM (FGCRO-DR, recycle strategy A)");
    let mut ctx = SolverContext::new();
    let mut gc = (0usize, 0.0f64);
    for (i, sys) in systems.iter().enumerate() {
        let amg = Amg::new(
            &sys.problem.a,
            sys.problem.near_nullspace.as_ref(),
            &amg_opts,
        );
        let b = DMat::from_col_major(n, 1, sys.rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t = Instant::now();
        let res = gcrodr::solve(&sys.problem.a, &amg, &b, &mut x, &opts, &mut ctx);
        let dt = t.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>6} {:>10.6}", i + 1, res.iterations, dt);
        gc.0 += res.iterations;
        gc.1 += dt;
    }
    println!("------------------------\n   {:>6} {:>10.6}", gc.0, gc.1);
    println!(
        "\ntotal iterations: FGMRES {} vs FGCRO-DR {} (paper: 235 vs 189 at scale)",
        fg.0, gc.0
    );
}
