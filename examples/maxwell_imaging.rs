//! Microwave-imaging forward problem — the paper's §V application.
//!
//! A ring of antennas around the (scaled-down) imaging chamber each
//! transmits in turn; each transmitter is one right-hand side of the same
//! time-harmonic Maxwell system. The optimized Schwarz preconditioner
//! (eq. 6) is set up once; the right-hand sides are then solved with block
//! GCRO-DR — the paper's best-performing combination (Fig. 8, alt. 7).
//! The "measurement" the inverse problem would consume is the field each
//! receiving antenna sees.
//!
//! Usage: `cargo run --release --example maxwell_imaging [nc] [antennas]`

use kryst_core::{gcrodr, OrthScheme, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::maxwell::{antenna_ring_rhs, maxwell3d, MaxwellParams};
use kryst_precond::{Schwarz, SchwarzOpts, SchwarzVariant};
use kryst_scalar::C64;
use kryst_sparse::partition::partition_rcb;
use std::time::Instant;

fn main() {
    let nc = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let nant = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let params = MaxwellParams::with_cylinder(nc);
    println!("imaging chamber: nc = {nc}, plastic cylinder inclusion, {nant} antennas");
    let (prob, geom) = maxwell3d(&params);
    let n = prob.a.nrows();
    println!("n = {n} complex edge unknowns, ω = {}", params.omega);

    // ORAS preconditioner, set up once for all transmitters.
    let t0 = Instant::now();
    let part = partition_rcb(&prob.coords, 8);
    let oras = Schwarz::new(
        &prob.a,
        &part,
        &SchwarzOpts {
            variant: SchwarzVariant::Oras,
            overlap: 2,
            impedance: params.omega,
        },
    );
    println!(
        "ORAS setup: {:.2}s, {} subdomains, largest {} dofs",
        t0.elapsed().as_secs_f64(),
        oras.nsubdomains(),
        oras.max_local_size()
    );

    // Solve blocks of transmitters with block GCRO-DR (the Fig. 8 winner).
    let rhs = antenna_ring_rhs(&geom, &params, nant, 0.3, 0.55);
    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 50,
        recycle: 10,
        side: PrecondSide::Right,
        orth: OrthScheme::CholQr,
        same_system: true,
        max_iters: 3000,
        ..Default::default()
    };
    let blk = 4usize.min(nant);
    let mut ctx = SolverContext::<C64>::new();
    let mut field = DMat::<C64>::zeros(n, nant);
    let t0 = Instant::now();
    let mut total_iters = 0;
    for start in (0..nant).step_by(blk) {
        let width = blk.min(nant - start);
        let b = rhs.cols(start, width);
        let mut x = DMat::<C64>::zeros(n, width);
        let res = gcrodr::solve(&prob.a, &oras, &b, &mut x, &opts, &mut ctx);
        assert!(
            res.converged,
            "transmitter block at {start} failed: {:?}",
            res.final_relres
        );
        total_iters += res.iterations;
        field.set_block(0, start, &x);
        println!(
            "transmitters {:>2}–{:>2}: {:>4} block iterations",
            start + 1,
            start + width,
            res.iterations
        );
    }
    println!(
        "all {nant} transmitters solved in {:.2}s, {total_iters} block iterations total",
        t0.elapsed().as_secs_f64()
    );

    // "Scattering matrix": field of transmitter j at receiver i's edge.
    println!("\n|S|-matrix (field magnitude at receiving antennas):");
    let receivers: Vec<usize> = (0..nant)
        .map(|a| {
            // The source edge of antenna a doubles as its receiver location.
            let col = rhs.col(a);
            (0..n).find(|&i| col[i] != C64::zero()).unwrap()
        })
        .collect();
    for &r in &receivers {
        for t in 0..nant {
            print!("{:>9.2e}", field[(r, t)].abs());
        }
        println!();
    }
    println!("\n(the diagonal dominates: each antenna sees its own excitation;");
    println!(" off-diagonals carry the transmission data the inverse problem uses)");
}
