//! `ex32` analogue — the paper's §IV-B workload at laptop scale.
//!
//! Compares FGMRES(30) against FGCRO-DR(30,10) on the four ν-parameterized
//! right-hand sides, with a *variable* GAMG preconditioner (inner GMRES
//! smoother), printing the artifact-description table format:
//!
//! ```text
//! <rhs index> <iterations> <time to solution (s)>
//! ```
//!
//! Usage: `cargo run --release --example poisson_sequence [nx]`

use kryst_core::{gcrodr, gmres, PrecondSide, SolveOpts, SolverContext};
use kryst_dense::DMat;
use kryst_pde::poisson::{paper_rhs_sequence, poisson2d};
use kryst_precond::{Amg, AmgOpts, SmootherKind};
use std::time::Instant;

fn main() {
    let nx = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let prob = poisson2d::<f64>(nx, nx);
    let n = prob.a.nrows();
    let rhss = paper_rhs_sequence::<f64>(nx, nx);
    println!("Poisson {nx}×{nx} (n = {n}), GAMG + GMRES(3) smoother, rtol 1e-8");

    let t0 = Instant::now();
    let amg = Amg::new(
        &prob.a,
        prob.near_nullspace.as_ref(),
        &AmgOpts {
            smoother: SmootherKind::Gmres { iters: 3 },
            ..Default::default()
        },
    );
    println!(
        "preconditioner setup: {:.3}s ({} levels, complexity {:.2})",
        t0.elapsed().as_secs_f64(),
        amg.nlevels(),
        amg.operator_complexity()
    );

    let opts = SolveOpts {
        rtol: 1e-8,
        restart: 30,
        recycle: 10,
        side: PrecondSide::Flexible,
        same_system: true,
        ..Default::default()
    };

    println!("\nPETSc (FGMRES)");
    let mut tot = (0usize, 0.0f64);
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t = Instant::now();
        let res = gmres::solve(&prob.a, &amg, &b, &mut x, &opts);
        let dt = t.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>6} {:>10.6}", i + 1, res.iterations, dt);
        tot.0 += res.iterations;
        tot.1 += dt;
    }
    println!("------------------------\n   {:>6} {:>10.6}", tot.0, tot.1);
    let fgmres_total = tot;

    println!("\nHPDDM (FGCRO-DR)");
    let mut ctx = SolverContext::new();
    let mut tot = (0usize, 0.0f64);
    for (i, rhs) in rhss.iter().enumerate() {
        let b = DMat::from_col_major(n, 1, rhs.clone());
        let mut x = DMat::zeros(n, 1);
        let t = Instant::now();
        let res = gcrodr::solve(&prob.a, &amg, &b, &mut x, &opts, &mut ctx);
        let dt = t.elapsed().as_secs_f64();
        assert!(res.converged);
        println!("{:>2} {:>6} {:>10.6}", i + 1, res.iterations, dt);
        tot.0 += res.iterations;
        tot.1 += dt;
    }
    println!("------------------------\n   {:>6} {:>10.6}", tot.0, tot.1);
    println!(
        "\ncumulative gain: {:+.1}% time, {:+.1}% iterations",
        (fgmres_total.1 / tot.1 - 1.0) * 100.0,
        (fgmres_total.0 as f64 / tot.0 as f64 - 1.0) * 100.0
    );
}
